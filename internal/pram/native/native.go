// Package native is the hardware register substrate: an
// implementation of pram.Memory backed by sync/atomic cells and
// driven by real goroutines, one per process slot, under the Go
// scheduler.
//
// The simulated substrate (*pram.Mem) serializes every access through
// the driving engine, which makes step counts exact and runs
// deterministic — and nanoseconds fiction. This package is the other
// half of the bargain: the same machine bodies, stepped concurrently
// on atomic registers, where the only scheduler is the operating
// system's. Access counts still reconcile with the simulated runs
// (each Read/Write is one atomic operation plus one counter bump), and
// wall-clock time finally means something. Experiment E18 uses both
// substrates to reproduce the Alistarh–Censor-Hillel–Shavit question —
// are these wait-free algorithms *practically* wait-free? — inside
// this repository.
//
// The single-writer multi-reader discipline is enforced the same way
// the simulator enforces it: owner/reader sets are configured before
// the memory is shared, and a violating access panics. The checks are
// debug-mode in spirit — a slice load and a compare per access — and
// can be disabled with SetChecks(false) for benchmarking the bare
// substrate.
package native

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pram"
)

// box wraps a register value so cells can hold values of any concrete
// type behind an atomic pointer (values are immutable once written).
type box struct{ v pram.Value }

// procCtr is one process's access counters, padded so neighbouring
// processes' bumps do not share a cache line.
type procCtr struct {
	reads, writes atomic.Uint64
	_             [48]byte
}

// Mem is the native memory: pram.Memory over sync/atomic cells.
//
// Configuration (Init, SetOwner, SetReader, SetChecks) must
// happen-before the memory is shared between goroutines — exactly the
// constraint the simulator's "before the simulation starts" documents.
// After that, any number of goroutines may Read and Write concurrently
// as long as each respects the ownership discipline; Run and RunTimed
// arrange the canonical one-goroutine-per-slot drive.
type Mem struct {
	cells  []atomic.Pointer[box]
	owner  []int32
	reader []int32
	nproc  int
	ctr    []procCtr
	checks bool
}

var _ pram.Memory = (*Mem)(nil)

// NewMem returns a native memory of size registers shared by nproc
// processes. All registers start holding nil and are writable by
// everyone until SetOwner is called; ownership checks start enabled.
func NewMem(size, nproc int) *Mem {
	if size < 0 || nproc <= 0 {
		panic("native: invalid memory geometry")
	}
	m := &Mem{
		cells:  make([]atomic.Pointer[box], size),
		owner:  make([]int32, size),
		reader: make([]int32, size),
		nproc:  nproc,
		ctr:    make([]procCtr, nproc),
		checks: true,
	}
	nilBox := &box{}
	for i := range m.cells {
		m.cells[i].Store(nilBox)
		m.owner[i] = pram.NoOwner
		m.reader[i] = pram.NoOwner
	}
	return m
}

// Size returns the number of registers.
func (m *Mem) Size() int { return len(m.cells) }

// NProc returns the number of processes sharing the memory.
func (m *Mem) NProc() int { return m.nproc }

// SetChecks toggles the per-access ownership checks (on by default).
// Pre-share configuration only.
func (m *Mem) SetChecks(on bool) { m.checks = on }

// Init sets register r's initial contents without counting an access.
// Pre-share configuration only.
func (m *Mem) Init(r int, v pram.Value) { m.cells[r].Store(&box{v}) }

// SetOwner restricts register r so that only process p may write it.
// Pre-share configuration only.
func (m *Mem) SetOwner(r, p int) {
	if p != pram.NoOwner && (p < 0 || p >= m.nproc) {
		panic(fmt.Sprintf("native: owner %d out of range", p))
	}
	m.owner[r] = int32(p)
}

// SetReader restricts register r so that only process p may read it.
// Pre-share configuration only.
func (m *Mem) SetReader(r, p int) {
	if p != pram.NoOwner && (p < 0 || p >= m.nproc) {
		panic(fmt.Sprintf("native: reader %d out of range", p))
	}
	m.reader[r] = int32(p)
}

// Read performs an atomic load of register r by process p and counts
// it as one step.
func (m *Mem) Read(p, r int) pram.Value {
	if m.checks {
		m.checkProc(p)
		if o := m.reader[r]; o != pram.NoOwner && o != int32(p) {
			panic(fmt.Sprintf(
				"native: single-reader violation: process %d read register %d (configured reader: process %d)",
				p, r, o))
		}
	}
	m.ctr[p].reads.Add(1)
	return m.cells[r].Load().v
}

// Write performs an atomic store of v to register r by process p and
// counts it as one step. Write panics if r has an owner other than p:
// that is a bug in the calling algorithm, not a runtime condition.
func (m *Mem) Write(p, r int, v pram.Value) {
	if m.checks {
		m.checkProc(p)
		if o := m.owner[r]; o != pram.NoOwner && o != int32(p) {
			panic(fmt.Sprintf(
				"native: single-writer violation: process %d wrote register %d (configured owner: process %d)",
				p, r, o))
		}
	}
	m.ctr[p].writes.Add(1)
	m.cells[r].Store(&box{v})
}

// Peek returns register r's contents without counting an access — for
// test assertions and oracles, never for algorithms. Safe to call
// concurrently with the run.
func (m *Mem) Peek(r int) pram.Value { return m.cells[r].Load().v }

// Owner returns register r's configured owner, or pram.NoOwner.
func (m *Mem) Owner(r int) int { return int(m.owner[r]) }

// Reader returns register r's configured reader, or pram.NoOwner.
func (m *Mem) Reader(r int) int { return int(m.reader[r]) }

// Counters returns a copy of the access counters. It may be called
// concurrently with the run; per-process counts are each internally
// consistent (they are plain atomic loads), and the totals are their
// sum at the moment each was read.
func (m *Mem) Counters() pram.Counters {
	c := pram.Counters{
		ReadsBy:  make([]uint64, m.nproc),
		WritesBy: make([]uint64, m.nproc),
	}
	for p := 0; p < m.nproc; p++ {
		c.ReadsBy[p] = m.ctr[p].reads.Load()
		c.WritesBy[p] = m.ctr[p].writes.Load()
		c.Reads += c.ReadsBy[p]
		c.Writes += c.WritesBy[p]
	}
	return c
}

func (m *Mem) checkProc(p int) {
	if p < 0 || p >= m.nproc {
		panic(fmt.Sprintf("native: process %d out of range [0,%d)", p, m.nproc))
	}
}
