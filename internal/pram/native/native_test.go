package native_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/pram/native"
	"repro/internal/snapshot"
	"repro/internal/spec"
	"repro/internal/types"
)

// TestMemoryBasics exercises the pram.Memory contract on the native
// substrate: geometry, init, read/write round-trips, Peek, ownership
// introspection, and access counting.
func TestMemoryBasics(t *testing.T) {
	m := native.NewMem(4, 2)
	if m.Size() != 4 || m.NProc() != 2 {
		t.Fatalf("geometry = (%d,%d), want (4,2)", m.Size(), m.NProc())
	}
	if got := m.Read(0, 0); got != nil {
		t.Fatalf("fresh register read %v, want nil", got)
	}
	m.Init(1, "seed")
	if got := m.Peek(1); got != "seed" {
		t.Fatalf("Peek after Init = %v", got)
	}
	m.Write(0, 2, 42)
	if got := m.Read(1, 2); got != 42 {
		t.Fatalf("read-after-write = %v, want 42", got)
	}
	if m.Owner(2) != pram.NoOwner || m.Reader(2) != pram.NoOwner {
		t.Fatal("fresh register has owner/reader restrictions")
	}
	m.SetOwner(3, 1)
	m.SetReader(3, 0)
	if m.Owner(3) != 1 || m.Reader(3) != 0 {
		t.Fatalf("ownership introspection = (%d,%d), want (1,0)", m.Owner(3), m.Reader(3))
	}
	c := m.Counters()
	// Init and Peek are configuration/oracle accesses, never steps.
	if c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("counters = %d reads / %d writes, want 2/1", c.Reads, c.Writes)
	}
	if c.ReadsBy[0] != 1 || c.ReadsBy[1] != 1 || c.WritesBy[0] != 1 {
		t.Fatalf("per-process counters wrong: %+v", c)
	}
}

// mustPanic runs f and asserts it panics with a message containing
// want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one containing %q)", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	f()
}

// TestOwnershipViolationsPanic pins the debug-mode checks: a write by
// a non-owner and a read by a non-reader each panic with a diagnostic
// naming the culprit, and SetChecks(false) disables enforcement.
func TestOwnershipViolationsPanic(t *testing.T) {
	m := native.NewMem(2, 3)
	m.SetOwner(0, 1)
	m.SetReader(1, 2)
	mustPanic(t, "single-writer violation", func() { m.Write(0, 0, 1) })
	mustPanic(t, "single-reader violation", func() { m.Read(0, 1) })
	// The configured processes are fine.
	m.Write(1, 0, 7)
	_ = m.Read(2, 1)
	// Out-of-range processes are caught even on unrestricted registers.
	mustPanic(t, "out of range", func() { m.Write(5, 0, 1) })

	un := native.NewMem(2, 3)
	un.SetOwner(0, 1)
	un.SetChecks(false)
	un.Write(0, 0, 1) // no panic: checks disabled
}

// TestRunUniversalCounter drives the Figure 4 machine body — the same
// state machine the simulator steps — on native atomics with one real
// goroutine per slot, and checks that the object's final state agrees
// with the sequential sum and the access counters reconcile with the
// machines' work.
func TestRunUniversalCounter(t *testing.T) {
	const n, opsPer = 4, 32
	mem := native.NewMem(snapshot.Layout{N: n}.Regs(), n)
	u := core.NewSim(types.Counter{}, n, 0, mem)
	machines := make([]pram.Machine, n)
	for p := 0; p < n; p++ {
		invs := make([]spec.Inv, opsPer)
		for i := range invs {
			invs[i] = types.Inc(1)
		}
		machines[p] = core.NewMachine(u, p, invs)
	}
	if err := native.Run(mem, machines); err != nil {
		t.Fatal(err)
	}
	// A fresh machine reads the final count through the same substrate.
	probe := core.NewMachine(u, 0, []spec.Inv{types.Read()})
	for !probe.Done() {
		probe.Step(mem)
	}
	if got := probe.Results()[0]; got != int64(n*opsPer) {
		t.Fatalf("final count = %v, want %d", got, n*opsPer)
	}
	c := mem.Counters()
	if c.Reads == 0 || c.Writes == 0 {
		t.Fatal("no accesses counted")
	}
	// Every op is non-pure: exactly two optimized scans each, plus the
	// probe's one pure read — the counts must reconcile to the access.
	wantReads := uint64(n*opsPer)*core.OpReads(n) + core.PureOpReads(n)
	wantWrites := uint64(n*opsPer)*core.OpWrites(n) + core.PureOpWrites(n)
	if c.Reads != wantReads || c.Writes != wantWrites {
		t.Fatalf("counters = %d/%d, want %d/%d", c.Reads, c.Writes, wantReads, wantWrites)
	}
}

// violator writes a register it does not own on its first step.
type violator struct{ done bool }

func (v *violator) Step(m pram.Memory) { m.Write(0, 0, "stomp"); v.done = true }
func (v *violator) Done() bool         { return v.done }
func (v *violator) Clone() pram.Machine {
	cp := *v
	return &cp
}

// idler completes immediately without touching shared memory.
type idler struct{ done bool }

func (v *idler) Step(m pram.Memory) { v.done = true }
func (v *idler) Done() bool         { return v.done }
func (v *idler) Clone() pram.Machine {
	cp := *v
	return &cp
}

// TestRunReportsViolation checks that an ownership panic inside one
// slot's goroutine is recovered and surfaced as Run's error — and does
// not take the other slots down.
func TestRunReportsViolation(t *testing.T) {
	m := native.NewMem(1, 2)
	m.SetOwner(0, 1)
	err := native.Run(m, []pram.Machine{&violator{}, &idler{}})
	if err == nil || !strings.Contains(err.Error(), "single-writer violation") {
		t.Fatalf("err = %v, want single-writer violation", err)
	}
}

// TestRunTimedSpans checks the wall-clock span recording: one span per
// completed operation, nonnegative durations, per-slot starts
// nondecreasing.
func TestRunTimedSpans(t *testing.T) {
	const n, opsPer = 3, 8
	mem := native.NewMem(snapshot.Layout{N: n}.Regs(), n)
	u := core.NewSim(types.Counter{}, n, 0, mem)
	machines := make([]pram.Machine, n)
	for p := 0; p < n; p++ {
		invs := make([]spec.Inv, opsPer)
		for i := range invs {
			invs[i] = types.Inc(1)
		}
		machines[p] = core.NewMachine(u, p, invs)
	}
	spans, err := native.RunTimed(mem, machines, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != n*opsPer {
		t.Fatalf("got %d spans, want %d", len(spans), n*opsPer)
	}
	lastEnd := make(map[int]int64)
	seen := make(map[int]int)
	for _, sp := range spans {
		if sp.End < sp.Start || sp.Start < 0 {
			t.Fatalf("span %+v not well-formed", sp)
		}
		if sp.Index != seen[sp.Proc] {
			t.Fatalf("slot %d spans out of order: index %d after %d", sp.Proc, sp.Index, seen[sp.Proc])
		}
		seen[sp.Proc]++
		if sp.Start < lastEnd[sp.Proc] {
			t.Fatalf("slot %d op %d started (%d) before its predecessor ended (%d)",
				sp.Proc, sp.Index, sp.Start, lastEnd[sp.Proc])
		}
		lastEnd[sp.Proc] = sp.End
	}
}

// TestCountersDuringRun reads Counters concurrently with a live run —
// the race detector is the assertion.
func TestCountersDuringRun(t *testing.T) {
	const n = 4
	mem := native.NewMem(snapshot.Layout{N: n}.Regs(), n)
	u := core.NewSim(types.Counter{}, n, 0, mem)
	machines := make([]pram.Machine, n)
	for p := 0; p < n; p++ {
		machines[p] = core.NewMachine(u, p, []spec.Inv{types.Inc(1), types.Inc(1)})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = mem.Counters()
				_ = mem.Peek(0)
			}
		}
	}()
	if err := native.Run(mem, machines); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}
