package pram

// Progress is implemented by machines that execute a script of
// operations and can report how many have completed. RunTimed uses it
// to attribute real-time intervals to individual operations.
type Progress interface {
	Machine
	// Completed returns the number of finished operations.
	Completed() int
}

// OpSpan is one completed operation with its real-time interval in
// scheduler steps. Start and End are chosen so that two operations
// overlap iff their step intervals overlap (invocation at the step the
// machine first ran after its previous completion, response at the
// step it completed).
type OpSpan struct {
	Proc, Index int
	Start, End  int64
}

// RunTimed drives the system under sched like Run, additionally
// recording an OpSpan for every operation completed by machines that
// implement Progress. maxSteps <= 0 means no limit.
func RunTimed(s *System, sched Scheduler, maxSteps int) ([]OpSpan, error) {
	var spans []OpSpan
	n := len(s.Machines)
	completed := make([]int, n)
	started := make([]int64, n)
	for p := range started {
		started[p] = -1
	}
	var step int64
	for {
		running := s.Running()
		if len(running) == 0 {
			return spans, nil
		}
		if maxSteps > 0 && step >= int64(maxSteps) {
			return spans, ErrStepLimit
		}
		p := sched.Next(running)
		if p == -1 {
			return spans, ErrStopped
		}
		if !contains(running, p) {
			return spans, errBadChoice(p, running)
		}
		if started[p] == -1 {
			started[p] = step
		}
		s.Step(p)
		if prog, ok := s.Machines[p].(Progress); ok {
			if got := prog.Completed(); got > completed[p] {
				spans = append(spans, OpSpan{
					Proc: p, Index: completed[p],
					// Stamps are spread so that an op's End precedes a
					// later op's Start only if it truly finished first.
					Start: started[p]*2 + 1, End: step*2 + 2,
				})
				completed[p] = got
				started[p] = -1
			}
		}
		step++
	}
}

func errBadChoice(p int, running []int) error {
	return schedError{p: p, running: running}
}

type schedError struct {
	p       int
	running []int
}

func (e schedError) Error() string {
	return "pram: scheduler chose a process outside the running set"
}
