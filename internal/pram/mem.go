// Package pram models the asynchronous PRAM of Aspnes & Herlihy:
// a finite set of sequential processes that communicate only by
// applying atomic read and write operations to shared single-writer
// multi-reader registers, scheduled one step at a time by an arbitrary
// (possibly adversarial) scheduler.
//
// Processes are represented as explicit state machines (Machine) whose
// Step method performs at most one shared-memory access. This step
// granularity is exactly the cost model of the paper: Theorem 5 counts
// "(2n+1) steps in each round", and Section 6.2 counts individual read
// and write operations per Scan. Machines are cloneable, which is what
// lets the Lemma 6 adversary consult its "preference" oracle — it forks
// the whole system and runs one process alone to see what it would
// return.
//
// The package enforces the single-writer discipline: each register may
// be assigned an owner, and a write by any other process panics. This
// turns a large class of algorithmic mistakes into immediate failures
// rather than silent non-linearizable behaviour.
package pram

import "fmt"

// Value is the contents of a shared register. Values must be treated
// as immutable once written: a machine that needs to change a value
// writes a fresh one.
type Value any

// Counters records the shared-memory accesses performed so far, in
// total and per process. It is the measurement substrate for the
// paper's operation-count claims (Theorem 5, Section 6.2).
type Counters struct {
	Reads, Writes uint64
	ReadsBy       []uint64
	WritesBy      []uint64
}

// clone returns a deep copy of c.
func (c Counters) clone() Counters {
	out := Counters{Reads: c.Reads, Writes: c.Writes}
	out.ReadsBy = append([]uint64(nil), c.ReadsBy...)
	out.WritesBy = append([]uint64(nil), c.WritesBy...)
	return out
}

// Accesses returns the total number of shared-memory accesses.
func (c Counters) Accesses() uint64 { return c.Reads + c.Writes }

// AccessesBy returns the accesses performed by process p.
func (c Counters) AccessesBy(p int) uint64 { return c.ReadsBy[p] + c.WritesBy[p] }

// Sub returns the per-field difference c − base. It is how callers
// measure the cost of a single operation: snapshot the counters, run
// the operation, subtract.
func (c Counters) Sub(base Counters) Counters {
	out := c.clone()
	out.Reads -= base.Reads
	out.Writes -= base.Writes
	for i := range out.ReadsBy {
		out.ReadsBy[i] -= base.ReadsBy[i]
		out.WritesBy[i] -= base.WritesBy[i]
	}
	return out
}

// NoOwner marks a register writable by every process.
const NoOwner = -1

// Mem is an array of atomic registers shared by nproc processes.
//
// Mem is not safe for concurrent use: it belongs to the simulation
// engine, which serializes all accesses (that serialization is the
// very definition of the asynchronous PRAM's atomic registers). The
// native, goroutine-based implementations elsewhere in this repository
// use sync/atomic instead.
type Mem struct {
	regs   []Value
	owner  []int
	reader []int
	nproc  int
	c      Counters
	onRead func(p, r int, v Value)
	onWrit func(p, r int, v Value)
}

// NewMem returns a memory of size registers shared by nproc processes.
// All registers start holding nil and are writable by everyone until
// SetOwner is called.
func NewMem(size, nproc int) *Mem {
	if size < 0 || nproc <= 0 {
		panic("pram: invalid memory geometry")
	}
	m := &Mem{
		regs:   make([]Value, size),
		owner:  make([]int, size),
		reader: make([]int, size),
		nproc:  nproc,
	}
	for i := range m.owner {
		m.owner[i] = NoOwner
		m.reader[i] = NoOwner
	}
	m.c.ReadsBy = make([]uint64, nproc)
	m.c.WritesBy = make([]uint64, nproc)
	return m
}

// Size returns the number of registers.
func (m *Mem) Size() int { return len(m.regs) }

// NProc returns the number of processes sharing the memory.
func (m *Mem) NProc() int { return m.nproc }

// SetOwner restricts register r so that only process p may write it,
// enforcing the single-writer multi-reader discipline of the paper's
// register model. Passing NoOwner lifts the restriction.
func (m *Mem) SetOwner(r, p int) {
	if p != NoOwner && (p < 0 || p >= m.nproc) {
		panic(fmt.Sprintf("pram: owner %d out of range", p))
	}
	m.owner[r] = p
}

// SetReader restricts register r so that only process p may read it,
// modelling single-reader registers (the weakest register flavour the
// literature the paper cites starts from). Passing NoOwner lifts the
// restriction.
func (m *Mem) SetReader(r, p int) {
	if p != NoOwner && (p < 0 || p >= m.nproc) {
		panic(fmt.Sprintf("pram: reader %d out of range", p))
	}
	m.reader[r] = p
}

// Init sets register r's initial contents without counting an access.
// It may only be used before the simulation starts.
func (m *Mem) Init(r int, v Value) { m.regs[r] = v }

// Read performs an atomic read of register r by process p and counts
// it as one step.
func (m *Mem) Read(p, r int) Value {
	m.checkProc(p)
	if o := m.reader[r]; o != NoOwner && o != p {
		panic(fmt.Sprintf(
			"pram: single-reader violation: process %d read register %d, whose configured reader set is {%s} (owner set {%s}, %d processes)",
			p, r, procSet(o), procSet(m.owner[r]), m.nproc))
	}
	m.c.Reads++
	m.c.ReadsBy[p]++
	v := m.regs[r]
	if m.onRead != nil {
		m.onRead(p, r, v)
	}
	return v
}

// Write performs an atomic write of v to register r by process p and
// counts it as one step. Write panics if r has an owner other than p:
// that is a bug in the calling algorithm, not a runtime condition.
func (m *Mem) Write(p, r int, v Value) {
	m.checkProc(p)
	if o := m.owner[r]; o != NoOwner && o != p {
		panic(fmt.Sprintf(
			"pram: single-writer violation: process %d wrote register %d, whose configured owner set is {%s} (reader set {%s}, %d processes)",
			p, r, procSet(o), procSet(m.reader[r]), m.nproc))
	}
	m.c.Writes++
	m.c.WritesBy[p]++
	m.regs[r] = v
	if m.onWrit != nil {
		m.onWrit(p, r, v)
	}
}

// Peek returns register r's contents without counting an access. It is
// for test assertions and oracles, never for algorithms.
func (m *Mem) Peek(r int) Value { return m.regs[r] }

// Owner returns register r's configured owner, or NoOwner.
func (m *Mem) Owner(r int) int { return m.owner[r] }

// Reader returns register r's configured reader, or NoOwner.
func (m *Mem) Reader(r int) int { return m.reader[r] }

// procSet renders an owner/reader configuration for diagnostics: the
// model's single-writer (single-reader) sets are either a singleton or
// "every process".
func procSet(p int) string {
	if p == NoOwner {
		return "all processes"
	}
	return fmt.Sprintf("process %d", p)
}

// Counters returns a copy of the access counters.
func (m *Mem) Counters() Counters { return m.c.clone() }

// Steps returns the total number of shared accesses so far without
// cloning the per-process counters — cheap enough to serve as a
// deterministic clock (one tick per serialized access).
func (m *Mem) Steps() uint64 { return m.c.Reads + m.c.Writes }

// Observe installs hooks invoked after every read and write. Either
// hook may be nil. Hooks see the simulation's serialized access order,
// which makes them suitable for trace recording and invariant checks.
func (m *Mem) Observe(onRead, onWrite func(p, r int, v Value)) {
	m.onRead, m.onWrit = onRead, onWrite
}

// Clone returns a deep copy of the memory: register contents (shared
// as immutable values), owners, and counters. Hooks are not copied; a
// cloned memory is an oracle's scratch world and should not re-trigger
// observation.
func (m *Mem) Clone() *Mem {
	out := &Mem{
		regs:   append([]Value(nil), m.regs...),
		owner:  append([]int(nil), m.owner...),
		reader: append([]int(nil), m.reader...),
		nproc:  m.nproc,
		c:      m.c.clone(),
	}
	return out
}

func (m *Mem) checkProc(p int) {
	if p < 0 || p >= m.nproc {
		panic(fmt.Sprintf("pram: process %d out of range [0,%d)", p, m.nproc))
	}
}
