package pram

import (
	"errors"
	"fmt"
)

// Machine is a process front-end as a step-granular state machine.
//
// Each call to Step performs at most one shared-memory access (read or
// write) plus any amount of local computation; this matches the
// asynchronous PRAM cost model, where only shared accesses count as
// steps. Step must not be called after Done reports true.
//
// Machines must be deterministic: given the same memory contents and
// local state, Step behaves identically. Determinism plus Clone is
// what enables adversarial scheduling with lookahead.
type Machine interface {
	// Step advances the machine by one step against m.
	Step(m Memory)
	// Done reports whether the machine's current operation has
	// completed (its front-end has returned a response).
	Done() bool
	// Clone returns an independent copy of the machine's local state.
	Clone() Machine
}

// Scheduler chooses which process takes the next step. Implementations
// live in internal/sched; adversaries with lookahead drive a System
// directly instead.
type Scheduler interface {
	// Next returns the index of the process to step next, given the
	// indices of processes whose machines are not Done. running is
	// sorted ascending and non-empty. Returning a value not present
	// in running is an error; returning -1 stops the run.
	Next(running []int) int
}

// ErrStepLimit is returned by Run when the step budget is exhausted
// before every machine finished. Seeing it for a wait-free algorithm
// under a fair scheduler is a bug; seeing it for a merely lock-free
// algorithm under an adversary is Theorem 8's point.
var ErrStepLimit = errors.New("pram: step limit exceeded")

// ErrStopped is returned by Run when the scheduler returned -1 while
// machines were still running.
var ErrStopped = errors.New("pram: scheduler stopped the run")

// System is a set of machines sharing one memory: a complete
// asynchronous PRAM configuration that can be stepped, run to
// completion, or forked.
type System struct {
	Mem      *Mem
	Machines []Machine
	// Steps counts scheduler-granted steps per process. It can exceed
	// the per-process access counters only if a machine performs a
	// purely local terminal step.
	Steps []uint64
	// total counts scheduler-granted steps across all processes; see
	// TotalSteps.
	total uint64
}

// NewSystem assembles a system. The number of machines must equal the
// memory's process count.
func NewSystem(m *Mem, machines []Machine) *System {
	if len(machines) != m.NProc() {
		panic(fmt.Sprintf("pram: %d machines for %d processes", len(machines), m.NProc()))
	}
	return &System{Mem: m, Machines: machines, Steps: make([]uint64, len(machines))}
}

// Done reports whether every machine has finished.
func (s *System) Done() bool {
	for _, mc := range s.Machines {
		if !mc.Done() {
			return false
		}
	}
	return true
}

// Running returns the ascending indices of unfinished machines.
func (s *System) Running() []int {
	var out []int
	for i, mc := range s.Machines {
		if !mc.Done() {
			out = append(out, i)
		}
	}
	return out
}

// Step advances process p by one step. It is a no-op if p's machine is
// already done; it returns whether the machine is done afterwards.
func (s *System) Step(p int) bool {
	mc := s.Machines[p]
	if mc.Done() {
		return true
	}
	s.Steps[p]++
	s.total++
	mc.Step(s.Mem)
	return mc.Done()
}

// TotalSteps returns the system's global step counter: how many steps
// the scheduler has granted in total, across all processes. It is the
// canonical deterministic timestamp — two runs of the same schedule
// see identical TotalSteps at every point — which is why the flight
// recorder uses it as a clock.
func (s *System) TotalSteps() uint64 { return s.total }

// Run steps machines under sched until all are done, the scheduler
// stops, or maxSteps total steps have been taken. maxSteps <= 0 means
// no limit — only safe for wait-free algorithms under fair schedulers.
func (s *System) Run(sched Scheduler, maxSteps int) error {
	taken := 0
	for {
		running := s.Running()
		if len(running) == 0 {
			return nil
		}
		if maxSteps > 0 && taken >= maxSteps {
			return ErrStepLimit
		}
		p := sched.Next(running)
		if p == -1 {
			return ErrStopped
		}
		if !contains(running, p) {
			return fmt.Errorf("pram: scheduler chose %d, not in running set %v", p, running)
		}
		s.Step(p)
		taken++
	}
}

// RunSolo steps only process p until its machine finishes or maxSteps
// elapse. It is the paper's "runs by itself until termination" — the
// preference oracle of Lemma 6.
func (s *System) RunSolo(p int, maxSteps int) error {
	for i := 0; !s.Machines[p].Done(); i++ {
		if maxSteps > 0 && i >= maxSteps {
			return ErrStepLimit
		}
		s.Step(p)
	}
	return nil
}

// Clone forks the entire configuration: memory and every machine. The
// clone shares nothing mutable with the original.
func (s *System) Clone() *System {
	ms := make([]Machine, len(s.Machines))
	for i, mc := range s.Machines {
		ms[i] = mc.Clone()
	}
	return &System{
		Mem:      s.Mem.Clone(),
		Machines: ms,
		Steps:    append([]uint64(nil), s.Steps...),
		total:    s.total,
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
