package pram

import "errors"

// Explore enumerates EVERY schedule of the system exhaustively: at
// each state it forks the system once per runnable process and
// recurses. When all machines finish, it calls onDone with the final
// configuration. This turns the simulator into a model checker for
// small configurations — random-schedule testing samples behaviours,
// Explore covers all of them.
//
// The number of schedules is the multinomial of the processes' step
// counts, so this is only feasible for a handful of processes and a
// few operations; budget bounds the total number of forks and Explore
// returns ErrBudget when it would be exceeded. Machines must support
// Clone faithfully (every machine in this repository does).
//
// Explore returns the number of complete schedules visited.
func Explore(sys *System, budget int, onDone func(*System)) (int, error) {
	e := &explorer{budget: budget, onDone: onDone}
	if err := e.walk(sys); err != nil {
		return e.leaves, err
	}
	return e.leaves, nil
}

// ErrBudget reports that Explore ran out of its fork budget.
var ErrBudget = errors.New("pram: exploration budget exhausted")

type explorer struct {
	budget int
	leaves int
	onDone func(*System)
}

func (e *explorer) walk(sys *System) error {
	running := sys.Running()
	if len(running) == 0 {
		e.leaves++
		if e.onDone != nil {
			e.onDone(sys)
		}
		return nil
	}
	for _, p := range running {
		if e.budget == 0 {
			return ErrBudget
		}
		e.budget--
		var next *System
		if p == running[len(running)-1] {
			// Tail call: the last branch may consume the current
			// system instead of forking it.
			next = sys
		} else {
			next = sys.Clone()
		}
		next.Step(p)
		if err := e.walk(next); err != nil {
			return err
		}
	}
	return nil
}

// ExploreCrashes enumerates every schedule AND every crash pattern in
// which up to maxCrashes processes stop for ever at an arbitrary point.
// onDone receives the final system plus the set of crashed processes
// (a process that crashed is simply never stepped again; its machine
// may be mid-operation). It composes crash choice into the same
// exhaustive walk: at every state, besides stepping any runnable
// process, any live process may crash.
func ExploreCrashes(sys *System, maxCrashes, budget int, onDone func(*System, []int)) (int, error) {
	e := &crashExplorer{budget: budget, max: maxCrashes, onDone: onDone}
	if err := e.walk(sys, nil); err != nil {
		return e.leaves, err
	}
	return e.leaves, nil
}

type crashExplorer struct {
	budget int
	leaves int
	max    int
	onDone func(*System, []int)
}

func (e *crashExplorer) walk(sys *System, crashed []int) error {
	var runnable []int
	for _, p := range sys.Running() {
		if !contains(crashed, p) {
			runnable = append(runnable, p)
		}
	}
	if len(runnable) == 0 {
		e.leaves++
		if e.onDone != nil {
			e.onDone(sys, append([]int(nil), crashed...))
		}
		return nil
	}
	for _, p := range runnable {
		if e.budget == 0 {
			return ErrBudget
		}
		e.budget--
		next := sys.Clone()
		next.Step(p)
		if err := e.walk(next, crashed); err != nil {
			return err
		}
	}
	if len(crashed) < e.max {
		for _, p := range runnable {
			if e.budget == 0 {
				return ErrBudget
			}
			e.budget--
			// Crashing consumes no steps; reuse the system for the
			// recursive call but restore the crash list after.
			if err := e.walk(sys, append(crashed, p)); err != nil {
				return err
			}
		}
	}
	return nil
}
