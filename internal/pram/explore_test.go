package pram

import (
	"errors"
	"testing"
)

// two-step toy machines for counting schedules exactly.
type twoStep struct {
	proc int
	left int
}

func (m *twoStep) Step(mem Memory) {
	mem.Write(m.proc, m.proc, m.left)
	m.left--
}
func (m *twoStep) Done() bool { return m.left == 0 }
func (m *twoStep) Clone() Machine {
	cp := *m
	return &cp
}

func newToySystem(steps []int) *System {
	mem := NewMem(len(steps), len(steps))
	ms := make([]Machine, len(steps))
	for i, s := range steps {
		ms[i] = &twoStep{proc: i, left: s}
	}
	return NewSystem(mem, ms)
}

func TestExploreCountsSchedules(t *testing.T) {
	// Two processes with 2 steps each: C(4,2) = 6 interleavings.
	leaves, err := Explore(newToySystem([]int{2, 2}), 0e0+1_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 6 {
		t.Fatalf("leaves = %d, want 6", leaves)
	}
	// Three processes with 1 step each: 3! = 6.
	leaves, err = Explore(newToySystem([]int{1, 1, 1}), 1_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 6 {
		t.Fatalf("leaves = %d, want 6", leaves)
	}
	// 2 and 3 steps: C(5,2) = 10.
	leaves, err = Explore(newToySystem([]int{2, 3}), 1_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 10 {
		t.Fatalf("leaves = %d, want 10", leaves)
	}
}

func TestExploreBudget(t *testing.T) {
	_, err := Explore(newToySystem([]int{4, 4, 4}), 10, nil)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestExploreLeavesAreComplete(t *testing.T) {
	count := 0
	_, err := Explore(newToySystem([]int{2, 1}), 1_000, func(sys *System) {
		count++
		if !sys.Done() {
			t.Error("onDone called on unfinished system")
		}
		// Final memory state is schedule-independent for these toys.
		if sys.Mem.Peek(0).(int) != 1 || sys.Mem.Peek(1).(int) != 1 {
			t.Errorf("unexpected final state")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 { // C(3,1)
		t.Fatalf("onDone ran %d times, want 3", count)
	}
}

func TestExploreCrashesCountsPatterns(t *testing.T) {
	// One process, one step, up to one crash: schedules are {step} and
	// {crash-immediately}: 2 leaves.
	leaves, err := ExploreCrashes(newToySystem([]int{1}), 1, 1_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 2 {
		t.Fatalf("leaves = %d, want 2", leaves)
	}
	// With no crashes allowed it degenerates to Explore.
	leaves, err = ExploreCrashes(newToySystem([]int{2, 2}), 0, 10_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 6 {
		t.Fatalf("leaves = %d, want 6", leaves)
	}
}

func TestExploreCrashesReportsCrashSet(t *testing.T) {
	sawCrashOf0 := false
	_, err := ExploreCrashes(newToySystem([]int{1, 1}), 1, 100_000, func(sys *System, crashed []int) {
		for _, p := range crashed {
			if p == 0 {
				sawCrashOf0 = true
				if sys.Machines[0].Done() && sys.Steps[0] == 0 {
					t.Error("crashed-at-start process reported done")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawCrashOf0 {
		t.Fatal("no leaf with process 0 crashed")
	}
}
