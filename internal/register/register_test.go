package register

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/pram"
	"repro/internal/sched"
	"repro/internal/types"
)

// toHistory converts op spans plus machine scripts/results into a
// checkable history against the types.Register spec.
func toHistory(spans []pram.OpSpan, name func(p int) (string, func(idx int) (any, any))) history.History {
	var h history.History
	id := 0
	for _, sp := range spans {
		op, argresp := name(sp.Proc)
		arg, resp := argresp(sp.Index)
		h.Ops = append(h.Ops, history.Op{
			ID: id, Proc: sp.Proc, Name: op, Arg: arg, Resp: resp,
			Start: sp.Start, End: sp.End,
		})
		id++
	}
	return h
}

// --- regular cell ------------------------------------------------------

func TestRegularReadDuringWriteReturnsOldOrNew(t *testing.T) {
	mem := pram.NewMem(1, 2)
	cell := Regular{Reg: 0, Writer: 0}
	cell.Install(mem, TimedVal{V: "init"})
	prev := TimedVal{V: "init"}
	next := TimedVal{V: "next", TS: 1}
	cell.WriteAnnounce(mem, prev, next)
	// Overlapping reads: chooser decides.
	if got := cell.Read(mem, 1, AlwaysOld{}).(TimedVal); got.V != "init" {
		t.Errorf("AlwaysOld read = %v", got)
	}
	if got := cell.Read(mem, 1, AlwaysNew{}).(TimedVal); got.V != "next" {
		t.Errorf("AlwaysNew read = %v", got)
	}
	cell.WriteCommit(mem, next)
	// After commit only the new value remains, whatever the chooser.
	if got := cell.Read(mem, 1, AlwaysOld{}).(TimedVal); got.V != "next" {
		t.Errorf("post-commit read = %v", got)
	}
}

// --- SWSR: Lamport construction -----------------------------------------

// swsrSystem builds writer (proc 0) + reader (proc 1) over one regular
// cell.
func swsrSystem(writes, reads int, ch Chooser, remember bool) (*pram.System, *SWSRWriter, *SWSRReader) {
	mem := pram.NewMem(1, 2)
	cell := Regular{Reg: 0, Writer: 0}
	cell.Install(mem, TimedVal{})
	script := make([]pram.Value, writes)
	for i := range script {
		script[i] = fmt.Sprintf("v%d", i+1)
	}
	w := NewSWSRWriter(cell, script)
	r := NewSWSRReader(cell, 1, reads, ch)
	r.Remember = remember
	return pram.NewSystem(mem, []pram.Machine{w, r}), w, r
}

// swsrHistory runs the system and produces a register history ("" is
// the initial value).
func swsrHistory(t *testing.T, sys *pram.System, w *SWSRWriter, r *SWSRReader, s pram.Scheduler) history.History {
	t.Helper()
	spans, err := pram.RunTimed(sys, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	return toHistory(spans, func(p int) (string, func(int) (any, any)) {
		if p == 0 {
			return types.OpWrite, func(i int) (any, any) { return fmt.Sprintf("v%d", i+1), nil }
		}
		return types.OpReadReg, func(i int) (any, any) {
			tv := r.Results()[i]
			if tv == nil {
				return nil, ""
			}
			return nil, tv.(string)
		}
	})
}

func TestSWSRAtomicUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		var ch Chooser
		switch seed % 3 {
		case 0:
			ch = AlwaysOld{}
		case 1:
			ch = AlwaysNew{}
		default:
			ch = NewSeededChooser(seed)
		}
		sys, w, r := swsrSystem(4, 5, ch, true)
		h := swsrHistory(t, sys, w, r, sched.NewRandom(seed))
		res, err := lincheck.Check(types.Register{}, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: Lamport SWSR produced non-atomic history:\n%v", seed, h.Ops)
		}
	}
}

// TestSWSRNaiveInversion: without reader memory, a fixed schedule
// forces the new/old inversion — read new value, then old — which the
// checker rejects. This is the counterexample that motivates the
// construction.
func TestSWSRNaiveInversion(t *testing.T) {
	sys, w, r := swsrSystem(1, 2, nil, false)
	// Schedule: writer announces (step 1); reader reads NEW during the
	// write window; reader reads again, now choosing OLD; writer
	// commits.
	choices := []bool{false, true} // first read new, second read old
	ci := 0
	r.ch = chooserFunc(func(p, reg int) bool {
		old := choices[ci]
		ci++
		return old
	})
	order := []int{0, 1, 1, 0} // announce, read, read, commit
	for _, p := range order {
		sys.Step(p)
	}
	spans := []pram.OpSpan{
		{Proc: 0, Index: 0, Start: 1, End: 8}, // write spans everything
		{Proc: 1, Index: 0, Start: 3, End: 4},
		{Proc: 1, Index: 1, Start: 5, End: 6},
	}
	h := toHistory(spans, func(p int) (string, func(int) (any, any)) {
		if p == 0 {
			return types.OpWrite, func(i int) (any, any) { return "v1", nil }
		}
		return types.OpReadReg, func(i int) (any, any) {
			tv := r.Results()[i]
			if tv == nil {
				return nil, ""
			}
			return nil, tv.(string)
		}
	})
	_ = w
	if got := r.Results(); got[0] != "v1" || got[1] != nil {
		t.Fatalf("expected inversion v1 then <nil>; got %v", got)
	}
	res, err := lincheck.Check(types.Register{}, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("new/old inversion accepted as atomic")
	}
}

// chooserFunc adapts a function to Chooser.
type chooserFunc func(p, r int) bool

func (f chooserFunc) Old(p, r int) bool { return f(p, r) }

// TestSWSRLamportFixesInversion: same adversarial schedule, reader
// memory on — the second read returns the remembered newer value.
func TestSWSRLamportFixesInversion(t *testing.T) {
	sys, _, r := swsrSystem(1, 2, nil, true)
	choices := []bool{false, true}
	ci := 0
	r.ch = chooserFunc(func(p, reg int) bool {
		old := choices[ci]
		ci++
		return old
	})
	for _, p := range []int{0, 1, 1, 0} {
		sys.Step(p)
	}
	if got := r.Results(); got[0] != "v1" || got[1] != "v1" {
		t.Fatalf("Lamport reader returned %v, want [v1 v1]", got)
	}
}

// --- SWMR ---------------------------------------------------------------

func swmrSystem(readers, writes, reads int, naive bool) (*pram.System, SWMRLayout, []*SWMRReader) {
	lay := SWMRLayout{Base: 0, Writer: 0}
	for i := 0; i < readers; i++ {
		lay.Readers = append(lay.Readers, i+1)
	}
	mem := pram.NewMem(lay.Regs(), readers+1)
	lay.Install(mem)
	script := make([]pram.Value, writes)
	for i := range script {
		script[i] = fmt.Sprintf("v%d", i+1)
	}
	machines := []pram.Machine{NewSWMRWriter(lay, script)}
	var rs []*SWMRReader
	for i := 0; i < readers; i++ {
		r := NewSWMRReader(lay, i, reads)
		r.Naive = naive
		machines = append(machines, r)
		rs = append(rs, r)
	}
	return pram.NewSystem(mem, machines), lay, rs
}

func swmrHistory(spans []pram.OpSpan, rs []*SWMRReader) history.History {
	return toHistory(spans, func(p int) (string, func(int) (any, any)) {
		if p == 0 {
			return types.OpWrite, func(i int) (any, any) { return fmt.Sprintf("v%d", i+1), nil }
		}
		return types.OpReadReg, func(i int) (any, any) {
			tv := rs[p-1].Results()[i]
			if tv == nil {
				return nil, ""
			}
			return nil, tv.(string)
		}
	})
}

func TestSWMRAtomicUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		sys, _, rs := swmrSystem(3, 3, 3, false)
		spans, err := pram.RunTimed(sys, sched.NewRandom(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		h := swmrHistory(spans, rs)
		res, err := lincheck.Check(types.Register{}, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: SWMR produced non-atomic history:\n%v", seed, h.Ops)
		}
	}
}

// TestSWMRNaiveReaderReaderInversion forces the classic anomaly: the
// writer updates reader 1's cell but not yet reader 2's; reader 1
// completes a read (new value), then reader 2 completes one (old
// value) — inconsistent without write-back.
func TestSWMRNaiveReaderReaderInversion(t *testing.T) {
	sys, _, rs := swmrSystem(2, 1, 1, true)
	// Machines: 0 = writer (2 cell writes per op), 1..2 = readers.
	// Naive 2-reader read = own cell + 1 report read = 2 steps.
	order := []int{
		0,    // writer updates cell for reader 1
		1, 1, // reader 1 completes: sees v1
		2, 2, // reader 2 completes: sees "" (its cell not yet written)
		0, // writer updates cell for reader 2
	}
	for _, p := range order {
		sys.Step(p)
	}
	if got1, got2 := rs[0].Results()[0], rs[1].Results()[0]; got1 != "v1" || got2 != nil {
		t.Fatalf("expected inversion, got %v / %v", got1, got2)
	}
	spans := []pram.OpSpan{
		{Proc: 0, Index: 0, Start: 1, End: 20},
		{Proc: 1, Index: 0, Start: 3, End: 6},
		{Proc: 2, Index: 0, Start: 8, End: 11},
	}
	h := swmrHistory(spans, rs)
	res, err := lincheck.Check(types.Register{}, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("reader-reader inversion accepted as atomic")
	}
}

// TestSWMRWriteBackFixesInversion: same schedule with write-back; the
// second reader learns v1 from reader 1's report cell.
func TestSWMRWriteBackFixesInversion(t *testing.T) {
	sys, _, rs := swmrSystem(2, 1, 1, false)
	// Full 2-reader read = own cell + 1 report read + 1 report write =
	// 3 steps.
	order := []int{
		0,       // writer updates cell for reader 1
		1, 1, 1, // reader 1 completes: sees v1, reports it
		2, 2, 2, // reader 2: own cell empty, but report says v1
		0,
	}
	for _, p := range order {
		sys.Step(p)
	}
	got1 := rs[0].Results()[0]
	got2 := rs[1].Results()[0]
	if got1 != "v1" || got2 != "v1" {
		t.Fatalf("write-back failed: %v / %v", got1, got2)
	}
}

// --- MRMW ---------------------------------------------------------------

func mrmwSystem(writers, readers, writes, reads int, naive bool) (*pram.System, []*MRMWReader) {
	lay := MRMWLayout{Base: 0}
	for w := 0; w < writers; w++ {
		lay.Writers = append(lay.Writers, w)
	}
	mem := pram.NewMem(lay.Regs(), writers+readers)
	lay.Install(mem)
	var machines []pram.Machine
	for w := 0; w < writers; w++ {
		script := make([]pram.Value, writes)
		for i := range script {
			script[i] = fmt.Sprintf("w%d.%d", w, i+1)
		}
		wm := NewMRMWWriter(lay, w, script)
		wm.Naive = naive
		machines = append(machines, wm)
	}
	var rs []*MRMWReader
	for r := 0; r < readers; r++ {
		rm := NewMRMWReader(lay, writers+r, reads)
		machines = append(machines, rm)
		rs = append(rs, rm)
	}
	return pram.NewSystem(mem, machines), rs
}

func mrmwHistory(spans []pram.OpSpan, writers int, rs []*MRMWReader) history.History {
	return toHistory(spans, func(p int) (string, func(int) (any, any)) {
		if p < writers {
			return types.OpWrite, func(i int) (any, any) {
				return fmt.Sprintf("w%d.%d", p, i+1), nil
			}
		}
		return types.OpReadReg, func(i int) (any, any) {
			tv := rs[p-writers].Results()[i]
			if tv == nil {
				return nil, ""
			}
			return nil, tv.(string)
		}
	})
}

func TestMRMWAtomicUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		const writers = 2
		sys, rs := mrmwSystem(writers, 2, 2, 3, false)
		spans, err := pram.RunTimed(sys, sched.NewRandom(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		h := mrmwHistory(spans, writers, rs)
		res, err := lincheck.Check(types.Register{}, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: MRMW produced non-atomic history:\n%v", seed, h.Ops)
		}
	}
}

// TestMRMWNaiveLosesWrites: with local timestamps, a completed write
// by a fresh writer is invisible behind an older writer's higher
// counter — rejected by the checker.
func TestMRMWNaiveLosesWrites(t *testing.T) {
	const writers = 2
	sys, rs := mrmwSystem(writers, 1, 3, 1, true)
	// Writer 0 completes all 3 writes (naive: 1 step each), then
	// writer 1 completes 1 write, then the reader reads.
	for i := 0; i < 3; i++ {
		sys.Step(0)
	}
	sys.Step(1) // writer 1: w1.1 with local ts 1
	for !rs[0].Done() {
		sys.Step(2)
	}
	if got := rs[0].Results()[0]; got != "w0.3" {
		t.Fatalf("expected the lost-update symptom (w0.3), got %v", got)
	}
	spans := []pram.OpSpan{
		{Proc: 0, Index: 0, Start: 1, End: 2},
		{Proc: 0, Index: 1, Start: 3, End: 4},
		{Proc: 0, Index: 2, Start: 5, End: 6},
		{Proc: 1, Index: 0, Start: 7, End: 8},
		{Proc: 2, Index: 0, Start: 9, End: 12},
	}
	h := mrmwHistory(spans, writers, rs)
	res, err := lincheck.Check(types.Register{}, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("naive MRMW lost-write history accepted as atomic")
	}
	// The proper construction under the same schedule returns w1.1.
	sys2, rs2 := mrmwSystem(writers, 1, 3, 1, false)
	for !sys2.Machines[0].Done() {
		sys2.Step(0)
	}
	for !sys2.Machines[1].Done() {
		sys2.Step(1)
	}
	for !rs2[0].Done() {
		sys2.Step(2)
	}
	if got := rs2[0].Results()[0]; got != "w1.3" {
		t.Fatalf("proper MRMW returned %v, want w1.3 (writer 1's last write)", got)
	}
}

// TestMRMWWriterScriptOnly exercises writer completion accounting.
func TestMRMWWriterScriptOnly(t *testing.T) {
	sys, _ := mrmwSystem(2, 1, 2, 0, false)
	w := sys.Machines[0].(*MRMWWriter)
	if w.Completed() != 0 {
		t.Fatal("fresh writer completed > 0")
	}
	// One write = read both regs + publish = 3 steps.
	sys.Step(0)
	if w.Completed() != 0 {
		t.Fatal("mid-op completion reported")
	}
	sys.Step(0)
	sys.Step(0)
	if w.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1", w.Completed())
	}
}

// TestReaderRestrictionEnforced: a construction reading a register it
// must not touch panics (the SetReader guard at work).
func TestReaderRestrictionEnforced(t *testing.T) {
	lay := SWMRLayout{Base: 0, Writer: 0, Readers: []int{1, 2}}
	mem := pram.NewMem(lay.Regs(), 3)
	lay.Install(mem)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on foreign read")
		}
	}()
	mem.Read(2, lay.cellReg(0)) // reader 2 reads reader 1's cell
}

// TestQuickStyleRandomMixes: heavier randomized soak across all three
// constructions at once is covered per-construction above; this test
// varies geometry.
func TestGeometrySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		readers := 2 + rng.Intn(3)
		sys, _, rs := swmrSystem(readers, 2, 2, false)
		spans, err := pram.RunTimed(sys, sched.NewBursty(int64(trial), 5), 0)
		if err != nil {
			t.Fatal(err)
		}
		h := swmrHistory(spans, rs)
		res, err := lincheck.Check(types.Register{}, h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("trial %d: non-atomic SWMR history", trial)
		}
	}
}
