// Package register reproduces the atomic-register construction layer
// the paper's model rests on. Section 1 takes atomic single-writer
// multi-reader registers as given, noting that "techniques for
// implementing these memory locations, often called atomic registers,
// have also received considerable attention [13, 14, 32, 35, 40, 43,
// 44]". This package builds that ladder explicitly, in simulation
// mode, with the classic counterexamples alongside the constructions:
//
//   - a *regular* single-writer cell (reads overlapping a write may
//     return the old or the new value), modelled as a two-step write;
//   - Lamport's SWSR atomic register from a regular cell via unbounded
//     timestamps and reader memory — plus the naive timestamp-free
//     reader that exhibits new/old inversion;
//   - a SWMR atomic register from SWSR registers via per-reader cells
//     and reader-to-reader write-back — plus the naive variant whose
//     reader-reader inversion a fixed schedule forces;
//   - a MRMW atomic register from SWMR registers via read-all
//     timestamps — plus the naive local-timestamp variant that loses
//     writes.
//
// Every construction is validated against the linearizability checker;
// every naive variant is shown to fail it.
package register

import (
	"fmt"
	"math/rand"

	"repro/internal/pram"
)

// Chooser resolves a regular register's freedom: when a read overlaps
// a write, does it return the old value? Deterministic choosers make
// anomalies reproducible; the seeded chooser explores both.
type Chooser interface {
	// Old reports whether the overlapping read by process p of
	// register r should return the pre-write value.
	Old(p, r int) bool
}

// AlwaysOld returns the stale value at every opportunity — the
// adversary's favourite.
type AlwaysOld struct{}

// Old always says yes.
func (AlwaysOld) Old(p, r int) bool { return true }

// AlwaysNew returns the fresh value at every opportunity.
type AlwaysNew struct{}

// Old always says no.
func (AlwaysNew) Old(p, r int) bool { return false }

// SeededChooser flips a reproducible coin per overlapping read.
type SeededChooser struct{ Rng *rand.Rand }

// NewSeededChooser returns a chooser seeded with seed.
func NewSeededChooser(seed int64) *SeededChooser {
	return &SeededChooser{Rng: rand.New(rand.NewSource(seed))}
}

// Old flips the coin.
func (c *SeededChooser) Old(p, r int) bool { return c.Rng.Intn(2) == 0 }

// regCell is the simulated contents of a regular register.
type regCell struct {
	Old     pram.Value
	New     pram.Value
	Writing bool
}

// Regular is a single-writer regular register at a fixed location in
// simulated memory. A write takes two steps (announce, commit); a read
// takes one step and, if it lands between the two, consults the
// Chooser.
type Regular struct {
	Reg    int
	Writer int
}

// Install initializes the cell with an initial value and sets the
// owner.
func (c Regular) Install(m pram.Memory, initial pram.Value) {
	m.Init(c.Reg, regCell{Old: initial, New: initial})
	m.SetOwner(c.Reg, c.Writer)
}

// WriteAnnounce is the first write step: the new value becomes
// available to overlapping readers while the old one remains valid.
// prev must be the writer's local copy of the last committed value
// (the writer is the single writer, so it always knows it).
func (c Regular) WriteAnnounce(m pram.Memory, prev, v pram.Value) {
	m.Write(c.Writer, c.Reg, regCell{Old: prev, New: v, Writing: true})
}

// WriteCommit is the second write step: the write completes and only
// the new value remains.
func (c Regular) WriteCommit(m pram.Memory, v pram.Value) {
	m.Write(c.Writer, c.Reg, regCell{Old: v, New: v})
}

// Read performs the single-step regular read by process p.
func (c Regular) Read(m pram.Memory, p int, ch Chooser) pram.Value {
	cell := m.Read(p, c.Reg).(regCell)
	if cell.Writing && ch.Old(p, c.Reg) {
		return cell.Old
	}
	return cell.New
}

// TimedVal is a timestamped value, the currency of every construction
// in this package. Timestamps are unbounded, as in the simplest
// classic constructions (the paper's own scan makes the same choice —
// Section 2 contrasts it with the bounded-counter alternatives).
type TimedVal struct {
	V  pram.Value
	TS uint64
	// WID breaks timestamp ties in the multi-writer construction.
	WID int
}

// Newer reports whether a supersedes b in (TS, WID) order.
func (a TimedVal) Newer(b TimedVal) bool {
	if a.TS != b.TS {
		return a.TS > b.TS
	}
	return a.WID > b.WID
}

// String renders the value.
func (a TimedVal) String() string { return fmt.Sprintf("%v@%d.%d", a.V, a.TS, a.WID) }
