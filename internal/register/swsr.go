package register

import "repro/internal/pram"

// This file is Lamport's construction of a single-writer single-reader
// ATOMIC register from a REGULAR one: the writer attaches an unbounded
// timestamp to every value, and the reader remembers the
// highest-timestamped value it has returned, returning the newer of
// (remembered, just-read). Regularity guarantees a read returns either
// the overlapped write's value or its predecessor's; the reader's
// memory removes the remaining anomaly — the "new/old inversion" in
// which a later read returns an older value than an earlier one. The
// naive reader (timestamp-free) exhibits exactly that inversion; see
// the tests.

// SWSRWriter executes a script of writes to a regular cell, two steps
// per write (announce, commit), stamping each value.
type SWSRWriter struct {
	cell   Regular
	script []pram.Value

	next      int
	ts        uint64
	last      TimedVal
	announced bool
}

// NewSWSRWriter returns a writer machine over cell with the given
// script. The cell must already be installed with initial value
// TimedVal{}.
func NewSWSRWriter(cell Regular, script []pram.Value) *SWSRWriter {
	return &SWSRWriter{cell: cell, script: script}
}

// Done reports whether the script is exhausted.
func (w *SWSRWriter) Done() bool { return w.next == len(w.script) && !w.announced }

// Completed returns the number of finished writes.
func (w *SWSRWriter) Completed() int {
	if w.announced {
		return w.next - 1
	}
	return w.next
}

// Clone returns an independent copy.
func (w *SWSRWriter) Clone() pram.Machine {
	cp := *w
	cp.script = append([]pram.Value(nil), w.script...)
	return &cp
}

// Step performs the next write half-step.
func (w *SWSRWriter) Step(m pram.Memory) {
	if w.Done() {
		panic("register: Step after Done")
	}
	if !w.announced {
		v := w.script[w.next]
		w.next++
		w.ts++
		tv := TimedVal{V: v, TS: w.ts}
		w.cell.WriteAnnounce(m, w.last, tv)
		w.last = tv
		w.announced = true
		return
	}
	w.cell.WriteCommit(m, w.last)
	w.announced = false
}

// SWSRReader executes a script of reads, one regular read per
// operation, with Lamport's remembered-timestamp rule. With Remember
// false it degrades to the naive (non-atomic) reader used by the
// negative tests.
type SWSRReader struct {
	cell     Regular
	proc     int
	ch       Chooser
	Remember bool

	reads   int
	done    int
	mem     TimedVal
	results []pram.Value
}

// NewSWSRReader returns a reader machine performing `reads` reads.
func NewSWSRReader(cell Regular, proc, reads int, ch Chooser) *SWSRReader {
	return &SWSRReader{cell: cell, proc: proc, ch: ch, reads: reads, Remember: true}
}

// Done reports whether the script is exhausted.
func (r *SWSRReader) Done() bool { return r.done == r.reads }

// Completed returns the number of finished reads.
func (r *SWSRReader) Completed() int { return r.done }

// Results returns the values the reads returned, in order.
func (r *SWSRReader) Results() []pram.Value { return r.results }

// Clone returns an independent copy.
func (r *SWSRReader) Clone() pram.Machine {
	cp := *r
	cp.results = append([]pram.Value(nil), r.results...)
	return &cp
}

// Step performs one read operation (a single shared access).
func (r *SWSRReader) Step(m pram.Memory) {
	if r.Done() {
		panic("register: Step after Done")
	}
	got := r.cell.Read(m, r.proc, r.ch).(TimedVal)
	if r.Remember {
		if got.Newer(r.mem) {
			r.mem = got
		}
		got = r.mem
	}
	r.results = append(r.results, got.V)
	r.done++
}
