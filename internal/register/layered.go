package register

import "repro/internal/pram"

// This file composes the construction ladder end-to-end: a
// single-writer multi-reader atomic register built directly on REGULAR
// cells — every underlying register is a two-step-write regular cell,
// each (writer cell, reader) and (report cell, reader) pair runs
// Lamport's timestamp-plus-memory discipline to become SWSR-atomic,
// and the SWMR write-back layer sits on top. One machine step is one
// access to a regular cell, so a layered write costs 2k steps and a
// layered read 3k−2 (k readers): the cost of climbing the whole ladder
// from the weakest rung, measured rather than asserted.

// LayeredSWMRLayout places the construction: the same geometry as
// SWMRLayout, but every register is a Regular cell.
type LayeredSWMRLayout struct {
	Base    int
	Writer  int
	Readers []int
}

// Regs returns the number of registers used.
func (l LayeredSWMRLayout) Regs() int { return len(l.Readers) * len(l.Readers) }

func (l LayeredSWMRLayout) cellReg(ri int) Regular {
	return Regular{Reg: l.Base + ri, Writer: l.Writer}
}

func (l LayeredSWMRLayout) reportReg(ri, rj int) Regular {
	k := len(l.Readers)
	return Regular{
		Reg:    l.Base + k + ri*(k-1) + adjIndex(rj, ri),
		Writer: l.Readers[ri],
	}
}

// Install initializes every regular cell.
func (l LayeredSWMRLayout) Install(m pram.Memory) {
	for ri := range l.Readers {
		l.cellReg(ri).Install(m, TimedVal{})
		for rj := range l.Readers {
			if ri != rj {
				l.reportReg(ri, rj).Install(m, TimedVal{})
			}
		}
	}
}

// LayeredSWMRWriter writes each scripted value to every reader's
// regular cell with two-step writes.
type LayeredSWMRWriter struct {
	lay    LayeredSWMRLayout
	script []pram.Value

	next      int
	ts        uint64
	i         int // reader cell cursor; len(Readers) when idle
	announced bool
	last      []TimedVal // last committed value per cell (single writer)
}

// NewLayeredSWMRWriter returns the writer machine.
func NewLayeredSWMRWriter(lay LayeredSWMRLayout, script []pram.Value) *LayeredSWMRWriter {
	return &LayeredSWMRWriter{
		lay: lay, script: script,
		i:    len(lay.Readers),
		last: make([]TimedVal, len(lay.Readers)),
	}
}

// Done reports whether the script is exhausted.
func (w *LayeredSWMRWriter) Done() bool {
	return w.next == len(w.script) && w.i == len(w.lay.Readers)
}

// Completed returns finished writes.
func (w *LayeredSWMRWriter) Completed() int {
	if w.i < len(w.lay.Readers) {
		return w.next - 1
	}
	return w.next
}

// Clone returns an independent copy.
func (w *LayeredSWMRWriter) Clone() pram.Machine {
	cp := *w
	cp.script = append([]pram.Value(nil), w.script...)
	cp.last = append([]TimedVal(nil), w.last...)
	return &cp
}

// Step performs one regular-cell half-write.
func (w *LayeredSWMRWriter) Step(m pram.Memory) {
	if w.Done() {
		panic("register: Step after Done")
	}
	if w.i == len(w.lay.Readers) {
		w.next++
		w.ts++
		w.i = 0
		w.announced = false
	}
	tv := TimedVal{V: w.script[w.next-1], TS: w.ts}
	cell := w.lay.cellReg(w.i)
	if !w.announced {
		cell.WriteAnnounce(m, w.last[w.i], tv)
		w.announced = true
		return
	}
	cell.WriteCommit(m, tv)
	w.last[w.i] = tv
	w.announced = false
	w.i++
}

// LayeredSWMRReader reads its regular cell and the other readers'
// regular report cells (Lamport memory per source register), then
// writes its reports back with two-step regular writes.
type LayeredSWMRReader struct {
	lay LayeredSWMRLayout
	ri  int
	ch  Chooser

	reads     int
	done      int
	phase     int // 0 own cell, 1 reports, 2 write-back
	others    []int
	cursor    int
	announced bool
	best      TimedVal
	// Lamport reader memory, one slot per source register this reader
	// consumes: index 0 is the writer's cell, 1.. are reports.
	mem []TimedVal
	// lastReport is the last value committed to our own report cells.
	lastReport []TimedVal
	results    []pram.Value
}

// NewLayeredSWMRReader returns the reader machine for lay.Readers[ri].
func NewLayeredSWMRReader(lay LayeredSWMRLayout, ri, reads int, ch Chooser) *LayeredSWMRReader {
	var others []int
	for j := range lay.Readers {
		if j != ri {
			others = append(others, j)
		}
	}
	return &LayeredSWMRReader{
		lay: lay, ri: ri, ch: ch, reads: reads,
		others:     others,
		mem:        make([]TimedVal, len(lay.Readers)),
		lastReport: make([]TimedVal, len(lay.Readers)),
	}
}

// Done reports whether the script is exhausted.
func (r *LayeredSWMRReader) Done() bool { return r.done == r.reads }

// Completed returns finished reads.
func (r *LayeredSWMRReader) Completed() int { return r.done }

// Results returns the returned values in order.
func (r *LayeredSWMRReader) Results() []pram.Value { return r.results }

// Clone returns an independent copy.
func (r *LayeredSWMRReader) Clone() pram.Machine {
	cp := *r
	cp.mem = append([]TimedVal(nil), r.mem...)
	cp.lastReport = append([]TimedVal(nil), r.lastReport...)
	cp.results = append([]pram.Value(nil), r.results...)
	return &cp
}

// lamportRead performs one regular read of cell, filtered through the
// per-register Lamport memory slot.
func (r *LayeredSWMRReader) lamportRead(m pram.Memory, cell Regular, slot int) TimedVal {
	got := cell.Read(m, r.lay.Readers[r.ri], r.ch).(TimedVal)
	if got.Newer(r.mem[slot]) {
		r.mem[slot] = got
	}
	return r.mem[slot]
}

// Step performs one regular-cell access of the current read.
func (r *LayeredSWMRReader) Step(m pram.Memory) {
	if r.Done() {
		panic("register: Step after Done")
	}
	switch r.phase {
	case 0:
		r.best = r.lamportRead(m, r.lay.cellReg(r.ri), 0)
		r.cursor = 0
		if len(r.others) == 0 {
			r.finish()
			return
		}
		r.phase = 1
	case 1:
		o := r.others[r.cursor]
		got := r.lamportRead(m, r.lay.reportReg(o, r.ri), 1+r.cursor)
		if got.Newer(r.best) {
			r.best = got
		}
		r.cursor++
		if r.cursor == len(r.others) {
			r.phase = 2
			r.cursor = 0
			r.announced = false
		}
	case 2:
		o := r.others[r.cursor]
		cell := r.lay.reportReg(r.ri, o)
		if !r.announced {
			cell.WriteAnnounce(m, r.lastReport[r.cursor], r.best)
			r.announced = true
			return
		}
		cell.WriteCommit(m, r.best)
		r.lastReport[r.cursor] = r.best
		r.announced = false
		r.cursor++
		if r.cursor == len(r.others) {
			r.finish()
		}
	}
}

func (r *LayeredSWMRReader) finish() {
	r.results = append(r.results, r.best.V)
	r.done++
	r.phase = 0
}
