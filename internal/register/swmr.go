package register

import "repro/internal/pram"

// This file builds a single-writer MULTI-reader atomic register from
// single-writer single-reader atomic registers (the classic unbounded
// construction): the writer keeps one cell per reader; a reader reads
// its own cell plus every other reader's report cell, adopts the
// newest value, and writes it back to its report cells so that no
// other reader can subsequently return anything older. Without the
// write-back (the naive variant), two readers can order themselves
// against an in-progress write inconsistently — the reader-reader
// inversion the tests force with a fixed schedule.
//
// The underlying SWSR registers are simulated by plain atomic cells
// with both the single-writer and single-reader restrictions enforced
// by the memory itself, so a construction that cheats (reads a cell it
// may not) panics instead of silently working.

// SWMRLayout places the construction's registers: for w the writer and
// readers R = {r_1..r_k},
//
//	cell(i):      writer → reader i        (k registers)
//	report(i, j): reader i → reader j      (k·(k−1) registers)
type SWMRLayout struct {
	Base    int
	Writer  int
	Readers []int
}

// Regs returns the number of registers used.
func (l SWMRLayout) Regs() int { return len(l.Readers) * len(l.Readers) }

// cellReg returns the register the writer uses to reach reader index
// ri (index into l.Readers).
func (l SWMRLayout) cellReg(ri int) int { return l.Base + ri }

// reportReg returns reader ri's report register for reader rj.
func (l SWMRLayout) reportReg(ri, rj int) int {
	k := len(l.Readers)
	return l.Base + k + ri*(k-1) + adjIndex(rj, ri)
}

// adjIndex maps rj (≠ ri) to 0..k-2.
func adjIndex(rj, ri int) int {
	if rj > ri {
		return rj - 1
	}
	return rj
}

// Install initializes every register with TimedVal{} and enforces the
// SWSR restrictions.
func (l SWMRLayout) Install(m pram.Memory) {
	for ri, reader := range l.Readers {
		reg := l.cellReg(ri)
		m.Init(reg, TimedVal{})
		m.SetOwner(reg, l.Writer)
		m.SetReader(reg, reader)
	}
	for ri, owner := range l.Readers {
		for rj, reader := range l.Readers {
			if ri == rj {
				continue
			}
			reg := l.reportReg(ri, rj)
			m.Init(reg, TimedVal{})
			m.SetOwner(reg, owner)
			m.SetReader(reg, reader)
		}
	}
}

// SWMRWriter writes each scripted value to every reader's cell, one
// cell per step.
type SWMRWriter struct {
	lay    SWMRLayout
	script []pram.Value

	next int
	ts   uint64
	i    int // next reader cell to write, or len(Readers) when idle
}

// NewSWMRWriter returns the writer machine.
func NewSWMRWriter(lay SWMRLayout, script []pram.Value) *SWMRWriter {
	return &SWMRWriter{lay: lay, script: script, i: len(lay.Readers)}
}

// Done reports whether the script is exhausted.
func (w *SWMRWriter) Done() bool {
	return w.next == len(w.script) && w.i == len(w.lay.Readers)
}

// Completed returns the number of finished writes.
func (w *SWMRWriter) Completed() int {
	if w.i < len(w.lay.Readers) {
		return w.next - 1
	}
	return w.next
}

// Clone returns an independent copy.
func (w *SWMRWriter) Clone() pram.Machine {
	cp := *w
	cp.script = append([]pram.Value(nil), w.script...)
	return &cp
}

// Step writes the current value to the next reader's cell.
func (w *SWMRWriter) Step(m pram.Memory) {
	if w.Done() {
		panic("register: Step after Done")
	}
	if w.i == len(w.lay.Readers) {
		w.next++
		w.ts++
		w.i = 0
	}
	tv := TimedVal{V: w.script[w.next-1], TS: w.ts}
	m.Write(w.lay.Writer, w.lay.cellReg(w.i), tv)
	w.i++
}

// SWMRReader performs reads: own cell, the other readers' reports,
// then (unless Naive) write-back to its own reports.
type SWMRReader struct {
	lay   SWMRLayout
	ri    int // index into lay.Readers
	reads int
	// Naive skips the write-back phase, surrendering reader-reader
	// atomicity.
	Naive bool

	done    int
	phase   int // 0 idle/own-cell, 1 collecting reports, 2 writing back
	others  []int
	cursor  int
	best    TimedVal
	results []pram.Value
}

// NewSWMRReader returns the reader machine for lay.Readers[ri].
func NewSWMRReader(lay SWMRLayout, ri, reads int) *SWMRReader {
	var others []int
	for j := range lay.Readers {
		if j != ri {
			others = append(others, j)
		}
	}
	return &SWMRReader{lay: lay, ri: ri, reads: reads, others: others}
}

// Done reports whether the script is exhausted.
func (r *SWMRReader) Done() bool { return r.done == r.reads }

// Completed returns the number of finished reads.
func (r *SWMRReader) Completed() int { return r.done }

// Results returns the returned values in order.
func (r *SWMRReader) Results() []pram.Value { return r.results }

// Clone returns an independent copy.
func (r *SWMRReader) Clone() pram.Machine {
	cp := *r
	cp.results = append([]pram.Value(nil), r.results...)
	return &cp
}

// Step performs one shared access of the current read.
func (r *SWMRReader) Step(m pram.Memory) {
	if r.Done() {
		panic("register: Step after Done")
	}
	me := r.lay.Readers[r.ri]
	switch r.phase {
	case 0:
		r.best = m.Read(me, r.lay.cellReg(r.ri)).(TimedVal)
		r.cursor = 0
		if len(r.others) == 0 {
			r.finish()
			return
		}
		r.phase = 1
	case 1:
		o := r.others[r.cursor]
		got := m.Read(me, r.lay.reportReg(o, r.ri)).(TimedVal)
		if got.Newer(r.best) {
			r.best = got
		}
		r.cursor++
		if r.cursor == len(r.others) {
			if r.Naive {
				r.finish()
				return
			}
			r.phase = 2
			r.cursor = 0
		}
	case 2:
		o := r.others[r.cursor]
		m.Write(me, r.lay.reportReg(r.ri, o), r.best)
		r.cursor++
		if r.cursor == len(r.others) {
			r.finish()
		}
	}
}

func (r *SWMRReader) finish() {
	r.results = append(r.results, r.best.V)
	r.done++
	r.phase = 0
}
