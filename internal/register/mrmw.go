package register

import "repro/internal/pram"

// This file builds a MULTI-writer multi-reader atomic register from
// single-writer multi-reader atomic registers (the classic
// Vitányi–Awerbuch-style unbounded construction): each writer owns one
// SWMR register; to write, it first reads every writer's register,
// takes the maximum timestamp, and publishes its value with a strictly
// larger one (ties broken by writer id); to read, a process reads
// every register and returns the (timestamp, id)-maximal value. The
// naive variant stamps writes with a local counter only, so a write by
// a slow writer can be published with a stale timestamp and vanish —
// reads that follow it in real time return an older value, which the
// linearizability checker rejects.

// MRMWLayout places one SWMR register per writer.
type MRMWLayout struct {
	Base    int
	Writers []int
}

// Regs returns the number of registers used.
func (l MRMWLayout) Regs() int { return len(l.Writers) }

// reg returns writer index wi's register.
func (l MRMWLayout) reg(wi int) int { return l.Base + wi }

// Install initializes the registers and enforces single-writer
// ownership (readable by everyone).
func (l MRMWLayout) Install(m pram.Memory) {
	for wi, w := range l.Writers {
		m.Init(l.reg(wi), TimedVal{})
		m.SetOwner(l.reg(wi), w)
	}
}

// MRMWWriter performs scripted writes: read all registers (one per
// step), then publish with max timestamp + 1. With Naive true it skips
// the read phase and uses a local counter.
type MRMWWriter struct {
	lay    MRMWLayout
	wi     int
	script []pram.Value
	Naive  bool

	next    int
	phase   int // 0 idle, 1 collecting, 2 ready to publish
	cursor  int
	maxSeen uint64
	localTS uint64
}

// NewMRMWWriter returns the writer machine for lay.Writers[wi].
func NewMRMWWriter(lay MRMWLayout, wi int, script []pram.Value) *MRMWWriter {
	return &MRMWWriter{lay: lay, wi: wi, script: script}
}

// Done reports whether the script is exhausted.
func (w *MRMWWriter) Done() bool { return w.next == len(w.script) && w.phase == 0 }

// Completed returns the number of finished writes.
func (w *MRMWWriter) Completed() int {
	if w.phase != 0 {
		return w.next - 1
	}
	return w.next
}

// Clone returns an independent copy.
func (w *MRMWWriter) Clone() pram.Machine {
	cp := *w
	cp.script = append([]pram.Value(nil), w.script...)
	return &cp
}

// Step performs the next access of the current write.
func (w *MRMWWriter) Step(m pram.Memory) {
	if w.Done() {
		panic("register: Step after Done")
	}
	me := w.lay.Writers[w.wi]
	if w.phase == 0 {
		w.next++
		w.maxSeen = 0
		w.cursor = 0
		if w.Naive {
			w.phase = 2
		} else {
			w.phase = 1
		}
		// fall through into the first access of this operation
	}
	if w.phase == 1 {
		got := m.Read(me, w.lay.reg(w.cursor)).(TimedVal)
		if got.TS > w.maxSeen {
			w.maxSeen = got.TS
		}
		w.cursor++
		if w.cursor == len(w.lay.Writers) {
			w.phase = 2
		}
		return
	}
	// phase 2: publish.
	var ts uint64
	if w.Naive {
		w.localTS++
		ts = w.localTS
	} else {
		ts = w.maxSeen + 1
	}
	m.Write(me, w.lay.reg(w.wi), TimedVal{V: w.script[w.next-1], TS: ts, WID: w.wi})
	w.phase = 0
}

// MRMWReader performs scripted reads: one register per step, returning
// the (TS, WID)-maximal value.
type MRMWReader struct {
	lay   MRMWLayout
	proc  int
	reads int

	done    int
	cursor  int
	started bool
	best    TimedVal
	results []pram.Value
}

// NewMRMWReader returns a reader machine for process proc.
func NewMRMWReader(lay MRMWLayout, proc, reads int) *MRMWReader {
	return &MRMWReader{lay: lay, proc: proc, reads: reads}
}

// Done reports whether the script is exhausted.
func (r *MRMWReader) Done() bool { return r.done == r.reads }

// Completed returns the number of finished reads.
func (r *MRMWReader) Completed() int { return r.done }

// Results returns the returned values in order.
func (r *MRMWReader) Results() []pram.Value { return r.results }

// Clone returns an independent copy.
func (r *MRMWReader) Clone() pram.Machine {
	cp := *r
	cp.results = append([]pram.Value(nil), r.results...)
	return &cp
}

// Step reads the next writer's register.
func (r *MRMWReader) Step(m pram.Memory) {
	if r.Done() {
		panic("register: Step after Done")
	}
	if !r.started {
		r.best = TimedVal{}
		r.cursor = 0
		r.started = true
	}
	got := m.Read(r.proc, r.lay.reg(r.cursor)).(TimedVal)
	if got.Newer(r.best) {
		r.best = got
	}
	r.cursor++
	if r.cursor == len(r.lay.Writers) {
		r.results = append(r.results, r.best.V)
		r.done++
		r.started = false
	}
}
