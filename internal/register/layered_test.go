package register

import (
	"fmt"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/pram"
	"repro/internal/sched"
	"repro/internal/types"
)

func layeredSystem(readers, writes, reads int, ch Chooser) (*pram.System, []*LayeredSWMRReader) {
	lay := LayeredSWMRLayout{Base: 0, Writer: 0}
	for i := 0; i < readers; i++ {
		lay.Readers = append(lay.Readers, i+1)
	}
	mem := pram.NewMem(lay.Regs(), readers+1)
	lay.Install(mem)
	script := make([]pram.Value, writes)
	for i := range script {
		script[i] = fmt.Sprintf("v%d", i+1)
	}
	machines := []pram.Machine{NewLayeredSWMRWriter(lay, script)}
	var rs []*LayeredSWMRReader
	for i := 0; i < readers; i++ {
		r := NewLayeredSWMRReader(lay, i, reads, ch)
		machines = append(machines, r)
		rs = append(rs, r)
	}
	return pram.NewSystem(mem, machines), rs
}

// TestLayeredAtomicUnderRandomSchedules: the full ladder — SWMR on
// regular cells — is atomic under random schedules and every chooser
// policy, including the maximally stale AlwaysOld.
func TestLayeredAtomicUnderRandomSchedules(t *testing.T) {
	choosers := map[string]func(seed int64) Chooser{
		"alwaysOld": func(int64) Chooser { return AlwaysOld{} },
		"alwaysNew": func(int64) Chooser { return AlwaysNew{} },
		"seeded":    func(seed int64) Chooser { return NewSeededChooser(seed) },
	}
	for name, mk := range choosers {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 15; seed++ {
				sys, rs := layeredSystem(3, 2, 2, mk(seed))
				spans, err := pram.RunTimed(sys, sched.NewRandom(seed), 0)
				if err != nil {
					t.Fatal(err)
				}
				h := toHistory(spans, func(p int) (string, func(int) (any, any)) {
					if p == 0 {
						return types.OpWrite, func(i int) (any, any) {
							return fmt.Sprintf("v%d", i+1), nil
						}
					}
					return types.OpReadReg, func(i int) (any, any) {
						tv := rs[p-1].Results()[i]
						if tv == nil {
							return nil, ""
						}
						return nil, tv.(string)
					}
				})
				res, err := lincheck.Check(types.Register{}, h)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Ok {
					t.Fatalf("seed %d: layered SWMR non-atomic:\n%v", seed, h.Ops)
				}
			}
		})
	}
}

// TestLayeredStepCounts: a layered write costs 2k regular-cell
// accesses and a layered read 3k−2.
func TestLayeredStepCounts(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		sys, rs := layeredSystem(k, 1, 1, AlwaysNew{})
		before := sys.Mem.Counters()
		if err := sys.RunSolo(0, 0); err != nil {
			t.Fatal(err)
		}
		wSteps := sys.Mem.Counters().Sub(before).AccessesBy(0)
		if wSteps != uint64(2*k) {
			t.Errorf("k=%d: write = %d steps, want %d", k, wSteps, 2*k)
		}
		before = sys.Mem.Counters()
		for !rs[0].Done() {
			sys.Step(1)
		}
		rSteps := sys.Mem.Counters().Sub(before).AccessesBy(1)
		if rSteps != uint64(3*k-2) {
			t.Errorf("k=%d: read = %d steps, want %d", k, rSteps, 3*k-2)
		}
	}
}

// TestLayeredSequentialSemantics: a read strictly after a write sees
// it, regardless of the chooser.
func TestLayeredSequentialSemantics(t *testing.T) {
	sys, rs := layeredSystem(2, 2, 1, AlwaysOld{})
	if err := sys.RunSolo(0, 0); err != nil {
		t.Fatal(err)
	}
	for !rs[0].Done() {
		sys.Step(1)
	}
	if got := rs[0].Results()[0]; got != "v2" {
		t.Fatalf("post-write read = %v, want v2", got)
	}
}

// TestLayeredExhaustiveTiny: every schedule of one 2-step write racing
// one single-reader read (k=1) — the read returns the old or the new
// value, never garbage, under both stale and fresh choosers.
func TestLayeredExhaustiveTiny(t *testing.T) {
	for _, ch := range []Chooser{AlwaysOld{}, AlwaysNew{}} {
		sys, _ := layeredSystem(1, 1, 1, ch)
		leaves, err := pram.Explore(sys, 100_000, func(final *pram.System) {
			got := final.Machines[1].(*LayeredSWMRReader).Results()[0]
			if got != nil && got != "v1" {
				t.Fatalf("read = %v", got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if leaves < 3 {
			t.Fatalf("leaves = %d", leaves)
		}
	}
}
