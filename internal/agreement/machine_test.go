package agreement

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pram"
	"repro/internal/sched"
)

func TestSingleProcessReturnsOwnInput(t *testing.T) {
	sys := NewSystem([]float64{42}, 1.0)
	out, err := Run(sys, sched.NewRoundRobin(), []float64{42}, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0] != 42 {
		t.Errorf("result = %v, want 42", out.Results[0])
	}
	// input read + input write + one scan read = 3 accesses.
	if out.StepsBy[0] != 3 {
		t.Errorf("steps = %d, want 3", out.StepsBy[0])
	}
}

func TestIdenticalInputsTerminateImmediately(t *testing.T) {
	inputs := []float64{7, 7, 7, 7}
	sys := NewSystem(inputs, 0.5)
	out, err := Run(sys, sched.NewRoundRobin(), inputs, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p, r := range out.Results {
		if r != 7 {
			t.Errorf("process %d returned %v, want 7", p, r)
		}
		if out.Rounds[p] != 0 {
			t.Errorf("process %d advanced %d rounds, want 0", p, out.Rounds[p])
		}
	}
}

func TestTwoProcessConvergence(t *testing.T) {
	for _, eps := range []float64{0.5, 0.1, 1e-3} {
		inputs := []float64{0, 1}
		sys := NewSystem(inputs, eps)
		out, err := Run(sys, sched.NewRoundRobin(), inputs, eps, 0)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if out.OutputRange >= eps {
			t.Errorf("eps=%v: output range %v", eps, out.OutputRange)
		}
	}
}

// TestSpecUnderRandomSchedules is the core property test: for many
// process counts, tolerances and random schedules, the Figure 1
// postconditions hold and the step count respects Theorem 5.
func TestSpecUnderRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 8} {
		for _, eps := range []float64{0.25, 0.03} {
			for seed := int64(0); seed < 8; seed++ {
				inputs := make([]float64, n)
				for i := range inputs {
					inputs[i] = rng.Float64() * 100
				}
				sys := NewSystem(inputs, eps)
				out, err := Run(sys, sched.NewRandom(seed), inputs, eps, 0)
				if err != nil {
					t.Fatalf("n=%d eps=%v seed=%d: %v", n, eps, seed, err)
				}
				bound := uint64(StepBound(n, out.InputRange, eps))
				if got := out.MaxSteps(); got > bound {
					t.Errorf("n=%d eps=%v seed=%d: %d steps > Theorem 5 bound %d",
						n, eps, seed, got, bound)
				}
			}
		}
	}
}

// TestLemma3RangeHalves checks that the written preference range
// shrinks by at least half every round, under several schedulers.
func TestLemma3RangeHalves(t *testing.T) {
	scheds := map[string]func() pram.Scheduler{
		"roundrobin": func() pram.Scheduler { return sched.NewRoundRobin() },
		"random":     func() pram.Scheduler { return sched.NewRandom(99) },
		"bursty":     func() pram.Scheduler { return sched.NewBursty(5, 6) },
	}
	inputs := []float64{0, 100, 13, 77, 42}
	for name, mk := range scheds {
		sys := NewSystem(inputs, 1e-4)
		var tr RoundTracker
		tr.Attach(sys.Mem)
		if _, err := Run(sys, mk(), inputs, 1e-4, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, r := range tr.ShrinkRatios() {
			if r > 0.5+1e-12 {
				t.Errorf("%s: round %d shrink ratio %v > 1/2 (Lemma 3 violated)", name, i+2, r)
			}
		}
		if tr.MaxRound() < 2 {
			t.Errorf("%s: run too short to observe shrinking (max round %d)", name, tr.MaxRound())
		}
	}
}

// TestWaitFreeUnderCrash: a crashed process must not block the others
// (the defining property of wait-freedom).
func TestWaitFreeUnderCrash(t *testing.T) {
	inputs := []float64{0, 50, 100}
	for victim := 0; victim < 3; victim++ {
		for after := uint64(0); after < 6; after++ {
			sys := NewSystem(inputs, 0.01)
			cr := &sched.Crash{Inner: sched.NewRoundRobin(), Victim: victim, After: after}
			err := sys.Run(cr, 200_000)
			// The run ends when everyone but the victim finished.
			if err != nil && err != pram.ErrStopped {
				t.Fatalf("victim=%d after=%d: %v", victim, after, err)
			}
			var results []float64
			for p, mc := range sys.Machines {
				if p == victim && !mc.Done() {
					continue
				}
				if !mc.Done() {
					t.Fatalf("victim=%d after=%d: survivor %d did not finish", victim, after, p)
				}
				results = append(results, mc.(*Machine).Result())
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, r := range results {
				lo, hi = math.Min(lo, r), math.Max(hi, r)
				if r < 0 || r > 100 {
					t.Errorf("victim=%d after=%d: output %v outside input range", victim, after, r)
				}
			}
			if hi-lo >= 0.01 {
				t.Errorf("victim=%d after=%d: survivors disagree by %v", victim, after, hi-lo)
			}
		}
	}
}

// TestSleepyProcessStillAgrees: one process is starved for a long
// stretch, then wakes; its late output must still agree with the
// values already returned (Lemma 4).
func TestSleepyProcessStillAgrees(t *testing.T) {
	inputs := []float64{0, 1, 0.5}
	eps := 1e-3
	sys := NewSystem(inputs, eps)
	// Run processes 1 and 2 to completion first; process 0 never runs.
	pr := sched.Func(func(running []int) int {
		for _, p := range running {
			if p != 0 {
				return p
			}
		}
		return -1
	})
	if err := sys.Run(pr, 100_000); err != pram.ErrStopped {
		t.Fatalf("expected ErrStopped when only sleeper remains, got %v", err)
	}
	// Now the sleeper wakes up alone.
	if err := sys.RunSolo(0, 100_000); err != nil {
		t.Fatal(err)
	}
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, mc := range sys.Machines {
		r := mc.(*Machine).Result()
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if hi-lo >= eps {
		t.Errorf("late output disagrees: range %v >= eps %v", hi-lo, eps)
	}
}

func TestInputIsIdempotent(t *testing.T) {
	n := 2
	mem := pram.NewMem(n, n)
	lay := Layout{Base: 0, N: n}
	lay.Install(mem)
	// Process 0 runs input twice (two machines in sequence would
	// re-input); emulate by running one machine's input phase, then a
	// fresh machine for the same process with a different x.
	m1 := NewMachine(0, 10, 1, lay)
	m1.Step(mem) // read
	m1.Step(mem) // write {10, round 1}
	m2 := NewMachine(0, 99, 1, lay)
	m2.Step(mem) // read: sees valid entry, skips write
	e := mem.Peek(lay.Reg(0)).(Entry)
	if e.Prefer != 10 || e.Round != 1 {
		t.Errorf("entry = %+v, want prefer 10 round 1", e)
	}
}

func TestMachineCloneIndependence(t *testing.T) {
	sys := NewSystem([]float64{0, 1}, 0.1)
	sys.Step(0) // input read
	sys.Step(0) // input write
	sys.Step(0) // first scan read fills view[0]
	orig := sys.Machines[0].(*Machine)
	cl := orig.Clone().(*Machine)
	// Mutate the original's view; the clone's copy must be isolated.
	orig.view[0] = Entry{Round: 99, Prefer: -1, Valid: true}
	if cl.view[0].Round == 99 {
		t.Error("clone shares the view slice with the original")
	}
	if cl.ph != orig.ph || cl.i != orig.i || cl.mine != orig.mine {
		t.Error("clone did not copy scalar state")
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() Outcome {
		inputs := []float64{3, 9, 27}
		sys := NewSystem(inputs, 0.05)
		out, err := Run(sys, sched.NewRandom(42), inputs, 0.05, 0)
		if err != nil {
			panic(err)
		}
		return out
	}
	a, b := run(), run()
	for p := range a.Results {
		if a.Results[p] != b.Results[p] || a.StepsBy[p] != b.StepsBy[p] {
			t.Fatalf("nondeterministic run: %+v vs %+v", a, b)
		}
	}
}

func TestOutputBeforeInputPanics(t *testing.T) {
	n := 1
	mem := pram.NewMem(n, n)
	lay := Layout{Base: 0, N: n}
	lay.Install(mem)
	m := &Machine{proc: 0, eps: 1, lay: lay, ph: phScan, view: make([]Entry, n)}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on output before input")
		}
	}()
	m.Step(mem) // completes a scan with no valid own entry
}

func TestStepBoundMonotone(t *testing.T) {
	if StepBound(2, 1, 2) <= 0 {
		t.Error("bound must be positive even when delta <= eps")
	}
	if StepBound(4, 1000, 1) <= StepBound(4, 10, 1) {
		t.Error("bound must grow with delta/eps")
	}
	if StepBound(8, 100, 1) <= StepBound(2, 100, 1) {
		t.Error("bound must grow with n")
	}
}

func TestLowerBoundValues(t *testing.T) {
	if got := LowerBound(1, 1.0/27); got != 3 {
		t.Errorf("LowerBound(1, 1/27) = %d, want 3", got)
	}
	if got := LowerBound(1, 2); got != 0 {
		t.Errorf("LowerBound(1, 2) = %d, want 0", got)
	}
}

func TestNewMachineValidation(t *testing.T) {
	lay := Layout{Base: 0, N: 2}
	for _, tc := range []struct {
		proc int
		eps  float64
	}{{0, 0}, {0, -1}, {-1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMachine(%d, eps=%v) did not panic", tc.proc, tc.eps)
				}
			}()
			NewMachine(tc.proc, 0, tc.eps, lay)
		}()
	}
}
