package agreement

import (
	"math"
	"testing"

	"repro/internal/sched"
)

func TestGreedyAdversarySafetyHolds(t *testing.T) {
	// The greedy adversary is still just a scheduler: validity and
	// agreement must survive it.
	for _, n := range []int{2, 3, 4} {
		eps := 1e-2
		inputs := worstInputsTest(n)
		sys := NewSystem(inputs, eps)
		rep, err := RunGreedyAdversary(sys, 200_000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range rep.Results {
			if r < 0 || r > 1 {
				t.Fatalf("n=%d: output %v outside inputs", n, r)
			}
			lo, hi = math.Min(lo, r), math.Max(hi, r)
		}
		if hi-lo >= eps {
			t.Fatalf("n=%d: outputs span %v", n, hi-lo)
		}
	}
}

func TestGreedyAdversaryForcesMoreWorkThanFair(t *testing.T) {
	// At n=2 the greedy spread-maximizer should cost at least as much
	// as a fair schedule — a sanity check that the lookahead bites.
	eps := math.Pow(3, -5)
	adv := NewSystem([]float64{0, 1}, eps)
	rep, err := RunGreedyAdversary(adv, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	fair := NewSystem([]float64{0, 1}, eps)
	out, err := Run(fair, sched.NewRoundRobin(), []float64{0, 1}, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxSteps() < out.MaxSteps() {
		t.Fatalf("greedy adversary (%d steps) cheaper than fair (%d)",
			rep.MaxSteps(), out.MaxSteps())
	}
	if uint64(len(rep.SpreadTrace)) == 0 {
		t.Fatal("no spread trace recorded")
	}
	// The floor of Lemma 6 applies to any schedule, greedy included.
	if rep.MaxSteps() < uint64(LowerBound(1, eps)) {
		t.Fatalf("greedy run finished below the log3 floor")
	}
}

func TestGreedySpreadTraceMonotoneToZeroish(t *testing.T) {
	eps := 0.01
	sys := NewSystem([]float64{0, 1, 0.5}, eps)
	rep, err := RunGreedyAdversary(sys, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	last := rep.SpreadTrace[len(rep.SpreadTrace)-1]
	if last >= eps {
		t.Fatalf("final spread %v >= eps %v despite all processes deciding", last, eps)
	}
}

// worstInputsTest spreads inputs across [0,1].
func worstInputsTest(n int) []float64 {
	inputs := make([]float64, n)
	for i := range inputs {
		if n > 1 {
			inputs[i] = float64(i) / float64(n-1)
		}
	}
	return inputs
}
