package agreement

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/pram"
)

// This file implements the adversary scheduler from the proof of
// Lemma 6: for two processes running any deterministic approximate
// agreement implementation, the adversary forces some process to take
// at least ⌊log₃(Δ/ε)⌋ steps before finishing.
//
// The adversary's tool is the "preference" oracle: a process's
// preference at any point is the value it would return if it ran by
// itself until termination. Preferences are well defined because
// machines are deterministic, and the oracle is implementable because
// the simulator can fork the entire system (memory + machine state)
// and run the fork solo. A process's own steps never change its own
// preference — only a step by the *other* process can.
//
// The strategy, verbatim from the proof:
//
//	Run P until it is about to change Q's preference, then do the same
//	for Q. Alternate P and Q in this way as long as neither process
//	changes preference. [When] each process is about to change the
//	other's preference ... the adversary now has a choice of running P,
//	Q, or both. ... The sum of [the three resulting gaps] is at least
//	|p0 − q0|, thus the adversary can always choose one that is greater
//	than or equal to |p0 − q0|/3.

// oracleBudget caps a preference oracle's solo run. The algorithm under
// test is wait-free, so a generous fixed budget suffices; exceeding it
// means the machine is not wait-free, which the adversary reports.
const oracleBudget = 1_000_000

// ErrNotWaitFree is returned when a solo run fails to terminate within
// the oracle budget: the machine under test is not wait-free.
var ErrNotWaitFree = errors.New("agreement: solo run exceeded step budget; machine is not wait-free")

// Preference returns the value process p would return if it ran alone
// from the current configuration — the proof's "preference". The
// system is not modified.
func Preference(sys *pram.System, p int) (float64, error) {
	fork := sys.Clone()
	if err := fork.RunSolo(p, oracleBudget); err != nil {
		return 0, ErrNotWaitFree
	}
	r, ok := fork.Machines[p].(resulter)
	if !ok {
		return 0, fmt.Errorf("agreement: machine %T does not expose a result", fork.Machines[p])
	}
	return r.Result(), nil
}

// resulter is any agreement machine exposing the value its output
// operation returned. Both Machine and test doubles implement it.
type resulter interface{ Result() float64 }

// AdversaryReport describes one adversarial execution.
type AdversaryReport struct {
	// StepsBy is the number of steps each process took before the
	// first process finished.
	StepsBy [2]uint64
	// Choices is the number of three-way choice points the adversary
	// reached (each shrinks the preference gap by at most 1/3).
	Choices int
	// GapTrace records the preference gap at the start and after each
	// choice point; consecutive ratios are the adversary's achieved
	// shrink factors.
	GapTrace []float64
	// Results are the final outputs after both processes are allowed
	// to finish.
	Results [2]float64
}

// MinSteps returns the smaller per-process step count — a conservative
// witness for "some process executed at least this many steps".
func (r AdversaryReport) MinSteps() uint64 {
	if r.StepsBy[0] < r.StepsBy[1] {
		return r.StepsBy[0]
	}
	return r.StepsBy[1]
}

// RunAdversary executes the Lemma 6 strategy against a two-process
// system until one process terminates, then lets both finish and
// verifies nothing diverged. maxSteps bounds the total real steps as a
// safety net.
func RunAdversary(sys *pram.System, maxSteps int) (AdversaryReport, error) {
	var rep AdversaryReport
	if len(sys.Machines) != 2 {
		return rep, fmt.Errorf("agreement: adversary needs exactly 2 processes, got %d", len(sys.Machines))
	}

	prefs := func() ([2]float64, error) {
		var out [2]float64
		for p := 0; p < 2; p++ {
			v, err := Preference(sys, p)
			if err != nil {
				return out, err
			}
			out[p] = v
		}
		return out, nil
	}

	cur, err := prefs()
	if err != nil {
		return rep, err
	}
	rep.GapTrace = append(rep.GapTrace, math.Abs(cur[0]-cur[1]))

	// wouldChange reports whether stepping `stepper` changes the other
	// process's preference.
	wouldChange := func(stepper int) (bool, error) {
		other := 1 - stepper
		before, err := Preference(sys, other)
		if err != nil {
			return false, err
		}
		fork := sys.Clone()
		fork.Step(stepper)
		after, err := Preference(fork, other)
		if err != nil {
			return false, err
		}
		return before != after, nil
	}

	taken := 0
	budget := func() error {
		taken++
		if maxSteps > 0 && taken > maxSteps {
			return pram.ErrStepLimit
		}
		return nil
	}

	for !sys.Machines[0].Done() && !sys.Machines[1].Done() {
		// Phase 1: run each process while it is harmless.
		progressed := true
		for progressed && !sys.Machines[0].Done() && !sys.Machines[1].Done() {
			progressed = false
			for p := 0; p < 2; p++ {
				for !sys.Machines[p].Done() {
					ch, err := wouldChange(p)
					if err != nil {
						return rep, err
					}
					if ch {
						break
					}
					if err := budget(); err != nil {
						return rep, err
					}
					sys.Step(p)
					progressed = true
				}
			}
		}
		if sys.Machines[0].Done() || sys.Machines[1].Done() {
			break
		}

		// Phase 2: both processes are about to change the other's
		// preference. Evaluate the three schedules on forks and take
		// the one that keeps the preference gap largest.
		type option struct {
			steps []int
			gap   float64
		}
		opts := []option{{steps: []int{0}}, {steps: []int{1}}, {steps: []int{0, 1}}}
		for i := range opts {
			fork := sys.Clone()
			for _, p := range opts[i].steps {
				fork.Step(p)
			}
			a, err := Preference(fork, 0)
			if err != nil {
				return rep, err
			}
			b, err := Preference(fork, 1)
			if err != nil {
				return rep, err
			}
			opts[i].gap = math.Abs(a - b)
		}
		best := opts[0]
		for _, o := range opts[1:] {
			if o.gap > best.gap {
				best = o
			}
		}
		for _, p := range best.steps {
			if err := budget(); err != nil {
				return rep, err
			}
			sys.Step(p)
		}
		rep.Choices++
		rep.GapTrace = append(rep.GapTrace, best.gap)
	}

	rep.StepsBy = [2]uint64{sys.Steps[0], sys.Steps[1]}

	// Let both processes run to completion and record their outputs.
	for p := 0; p < 2; p++ {
		if err := sys.RunSolo(p, oracleBudget); err != nil {
			return rep, ErrNotWaitFree
		}
		rep.Results[p] = sys.Machines[p].(resulter).Result()
	}
	return rep, nil
}
