package agreement

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pram"
	"repro/internal/sched"
)

// TestQuickSpecHolds: for arbitrary inputs, tolerances, process counts
// and schedules, the Figure 1 postconditions and the Theorem 5 bound
// hold. agreement.Run panics internally on a spec violation, so this
// property reduces to "Run succeeds and stays under the bound".
func TestQuickSpecHolds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		eps := math.Pow(10, -float64(rng.Intn(5)))
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()*200 - 100
		}
		var s pram.Scheduler
		switch rng.Intn(3) {
		case 0:
			s = sched.NewRoundRobin()
		case 1:
			s = sched.NewRandom(seed)
		default:
			s = sched.NewBursty(seed, 1+rng.Intn(20))
		}
		sys := NewSystem(inputs, eps)
		out, err := Run(sys, s, inputs, eps, 0)
		if err != nil {
			return false
		}
		return out.MaxSteps() <= uint64(StepBound(n, out.InputRange+1, eps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickCrashSubsetsStillAgree: crash a random subset mid-run; all
// survivors finish and agree within eps.
func TestQuickCrashSubsetsStillAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		eps := 0.01
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64() * 50
		}
		alive := make(map[int]bool)
		for p := 0; p < n; p++ {
			alive[p] = rng.Intn(3) != 0
		}
		anyAlive := false
		for _, a := range alive {
			anyAlive = anyAlive || a
		}
		if !anyAlive {
			return true
		}
		// Crashed processes take a random prefix of steps, then stop.
		budget := make(map[int]int)
		for p := 0; p < n; p++ {
			if !alive[p] {
				budget[p] = rng.Intn(10)
			}
		}
		inner := sched.NewRandom(seed * 3)
		s := sched.Func(func(running []int) int {
			var ok []int
			for _, p := range running {
				if alive[p] || budget[p] > 0 {
					ok = append(ok, p)
				}
			}
			if len(ok) == 0 {
				return -1
			}
			p := inner.Next(ok)
			if !alive[p] {
				budget[p]--
			}
			return p
		})
		sys := NewSystem(inputs, eps)
		err := sys.Run(s, 5_000_000)
		if err != nil && err != pram.ErrStopped {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for p := 0; p < n; p++ {
			mc := sys.Machines[p].(*Machine)
			if alive[p] && !mc.Done() {
				return false // survivor blocked: wait-freedom broken
			}
			if mc.Done() {
				lo = math.Min(lo, mc.Result())
				hi = math.Max(hi, mc.Result())
			}
		}
		return hi <= 50 && lo >= 0 && (lo > hi || hi-lo < eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
