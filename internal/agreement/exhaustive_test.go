package agreement

import (
	"math"
	"testing"

	"repro/internal/pram"
)

// Exhaustive model checking of the approximate agreement algorithm for
// small configurations: EVERY schedule (and every single-crash
// pattern) of a two-process instance is enumerated via pram.Explore,
// and the Figure 1 postconditions are asserted at every leaf. Random
// schedules sample the behaviour space; these tests cover it.

func checkLeaf(t *testing.T, sys *pram.System, eps float64, crashed []int) {
	t.Helper()
	lo, hi := math.Inf(1), math.Inf(-1)
	for p, mc := range sys.Machines {
		am := mc.(*Machine)
		if !am.Done() {
			if !isCrashed(crashed, p) {
				t.Fatalf("process %d unfinished yet not crashed", p)
			}
			continue
		}
		r := am.Result()
		if r < 0 || r > 1 {
			t.Fatalf("validity violated: output %v outside [0,1]", r)
		}
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if lo <= hi && hi-lo >= eps {
		t.Fatalf("agreement violated: outputs span %v >= eps %v", hi-lo, eps)
	}
}

func isCrashed(crashed []int, p int) bool {
	for _, c := range crashed {
		if c == p {
			return true
		}
	}
	return false
}

// TestExhaustiveTwoProcess enumerates every schedule of a 2-process
// instance with conflicting inputs.
func TestExhaustiveTwoProcess(t *testing.T) {
	eps := 0.6
	sys := NewSystem([]float64{0, 1}, eps)
	leaves, err := pram.Explore(sys, 30_000_000, func(final *pram.System) {
		checkLeaf(t, final, eps, nil)
	})
	if err != nil {
		t.Fatalf("%v after %d leaves", err, leaves)
	}
	if leaves < 100 {
		t.Fatalf("only %d schedules explored; configuration too trivial", leaves)
	}
	t.Logf("exhaustively verified %d schedules", leaves)
}

// TestExhaustiveTwoProcessTighterEps pushes to a smaller tolerance
// (more rounds, more interleavings) while staying within budget.
func TestExhaustiveTwoProcessTighterEps(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive test")
	}
	eps := 0.4
	sys := NewSystem([]float64{0, 1}, eps)
	leaves, err := pram.Explore(sys, 60_000_000, func(final *pram.System) {
		checkLeaf(t, final, eps, nil)
	})
	if err != nil {
		t.Skipf("budget exhausted after %d leaves (acceptable: space too large)", leaves)
	}
	t.Logf("exhaustively verified %d schedules", leaves)
}

// TestExhaustiveWithCrashes enumerates every schedule AND every ≤1
// crash pattern: survivors always terminate with valid, agreeing
// outputs.
func TestExhaustiveWithCrashes(t *testing.T) {
	eps := 0.8
	sys := NewSystem([]float64{0, 1}, eps)
	leaves, err := pram.ExploreCrashes(sys, 1, 30_000_000, func(final *pram.System, crashed []int) {
		checkLeaf(t, final, eps, crashed)
	})
	if err != nil {
		t.Fatalf("%v after %d leaves", err, leaves)
	}
	if leaves < 100 {
		t.Fatalf("only %d crash-schedules explored", leaves)
	}
	t.Logf("exhaustively verified %d schedule+crash combinations", leaves)
}
