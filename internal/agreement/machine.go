// Package agreement implements the wait-free approximate agreement
// object of Aspnes & Herlihy, Section 4 (Figures 1 and 2), in both
// execution modes:
//
//   - a step-granular state machine (Machine) for the asynchronous PRAM
//     simulator, which is what the paper's step counts (Theorem 5) and
//     the Lemma 6 adversary are measured against, and
//   - a native goroutine implementation (Native) built on atomic
//     registers, for real concurrent use and throughput benchmarks.
//
// The object's sequential specification (Figure 1): input(P, x) inserts
// x into the input set X; output(P) returns a value y such that the set
// Y of all outputs satisfies range(Y) ⊆ range(X) and |range(Y)| < ε.
package agreement

import (
	"fmt"
	"math"

	"repro/apram/obs"
	"repro/internal/pram"
)

// Entry is the per-process register contents of Figure 2: an integer
// round (initially zero) and a real preference (initially ⊥, encoded
// by Valid == false).
type Entry struct {
	Round  int
	Prefer float64
	Valid  bool
}

// Layout describes where an agreement object's registers live in a
// simulated memory: register Base+P is process P's entry.
type Layout struct {
	Base int
	N    int
}

// Reg returns the register index of process p's entry.
func (l Layout) Reg(p int) int { return l.Base + p }

// Install initializes the object's registers in m: all entries start
// at round zero with no preference, and register p is owned by p.
func (l Layout) Install(m pram.Memory) {
	for p := 0; p < l.N; p++ {
		m.Init(l.Reg(p), Entry{})
		m.SetOwner(l.Reg(p), p)
	}
}

// phases of the Machine, mirroring the pseudocode of Figure 2.
type phase int

const (
	phInputRead  phase = iota // input: read own entry (line 2)
	phInputWrite              // input: write initial preference (line 3)
	phScan                    // output: scanning the entries (line 10)
	phWrite                   // output: advance the entry (line 16)
	phDone
)

// Machine executes input(P, x) followed by output(P) as a
// step-granular state machine: one shared-memory access per Step. It
// is a line-by-line transcription of Figure 2.
type Machine struct {
	proc int
	x    float64
	eps  float64
	lay  Layout

	ph      phase
	i       int     // scan cursor
	view    []Entry // entries read by the current scan
	advance bool    // the rescan flag of lines 18–19
	mine    Entry   // local copy of own entry (single writer)
	pending Entry   // entry to write next, when ph == phWrite

	rounds int // completed advances (writes in line 16)
	scans  int // completed scans
	result float64

	// probe, when set, receives an obs.EvRound per advance and an
	// obs.EvRetry per line-19 rescan. Register counts and op edges are
	// the driving engine's job; clones share the probe.
	probe obs.Probe
}

// NewMachine returns a machine for process proc that will input x and
// then run output() to completion with tolerance eps > 0.
func NewMachine(proc int, x, eps float64, lay Layout) *Machine {
	if eps <= 0 {
		panic("agreement: eps must be positive")
	}
	if proc < 0 || proc >= lay.N {
		panic(fmt.Sprintf("agreement: process %d out of range", proc))
	}
	return &Machine{
		proc: proc, x: x, eps: eps, lay: lay,
		ph:   phInputRead,
		view: make([]Entry, lay.N),
	}
}

// Done reports whether output() has returned.
func (mc *Machine) Done() bool { return mc.ph == phDone }

// Completed returns 1 once input+output finished (pram.Progress): the
// machine's whole script is the single agreement operation.
func (mc *Machine) Completed() int {
	if mc.ph == phDone {
		return 1
	}
	return 0
}

// Result returns the value output() returned. It panics if the machine
// is not done.
func (mc *Machine) Result() float64 {
	if mc.ph != phDone {
		panic("agreement: Result before Done")
	}
	return mc.result
}

// Rounds returns the number of times the machine advanced its entry
// (executed line 16).
func (mc *Machine) Rounds() int { return mc.rounds }

// Scans returns the number of completed scans of the entry array.
func (mc *Machine) Scans() int { return mc.scans }

// Instrument attaches a probe for round/retry events.
func (mc *Machine) Instrument(p obs.Probe) { mc.probe = p }

// Clone returns an independent copy of the machine.
func (mc *Machine) Clone() pram.Machine {
	cp := *mc
	cp.view = append([]Entry(nil), mc.view...)
	return &cp
}

// Step performs the machine's next shared-memory access.
func (mc *Machine) Step(m pram.Memory) {
	switch mc.ph {
	case phInputRead:
		// Line 2: if r[P].prefer = ⊥ ...
		e := m.Read(mc.proc, mc.lay.Reg(mc.proc)).(Entry)
		mc.mine = e
		if e.Valid {
			// input has no effect; go straight to output.
			mc.ph = phScan
			mc.i = 0
			return
		}
		mc.ph = phInputWrite

	case phInputWrite:
		// Line 3: r[P] := [prefer: x, round: 1]
		mc.mine = Entry{Round: 1, Prefer: mc.x, Valid: true}
		m.Write(mc.proc, mc.lay.Reg(mc.proc), mc.mine)
		mc.ph = phScan
		mc.i = 0

	case phScan:
		// Line 10: scan r, one register per step.
		mc.view[mc.i] = m.Read(mc.proc, mc.lay.Reg(mc.i)).(Entry)
		mc.i++
		if mc.i < mc.lay.N {
			return
		}
		mc.scans++
		mc.decide()

	case phWrite:
		// Lines 16–17: advance the entry.
		mc.mine = mc.pending
		m.Write(mc.proc, mc.lay.Reg(mc.proc), mc.mine)
		mc.rounds++
		if mc.probe != nil {
			mc.probe.Event(mc.proc, obs.EvRound)
		}
		mc.advance = false
		mc.ph = phScan
		mc.i = 0

	case phDone:
		panic("agreement: Step after Done")
	}
}

// decide evaluates lines 11–19 after a completed scan.
func (mc *Machine) decide() {
	if !mc.mine.Valid {
		panic("agreement: output invoked before input (X is empty)")
	}
	// Line 11: E := {r[Q].prefer : r[Q].round >= r[P].round - 1}
	// Line 12: L := {r[Q].prefer : r[Q].round = max_Q r[Q].round}
	maxRound := 0
	for _, e := range mc.view {
		if e.Valid && e.Round > maxRound {
			maxRound = e.Round
		}
	}
	eMin, eMax := math.Inf(1), math.Inf(-1)
	lMin, lMax := math.Inf(1), math.Inf(-1)
	// A ⊥ entry (round 0, no preference) inside the round window makes
	// range(E) indeterminate: the process that owns it may yet input
	// an arbitrary value at round 1. This can only happen while our
	// own round is 1 (the window is round ≥ 0); at round ≥ 2, round-0
	// entries trail by two or more and are discarded like any other
	// stale entry. Without this rule a process could return at round 1
	// before a slow peer's input lands, violating agreement — the
	// Lemma 4 proof covers round-r writes made through line 16 only,
	// and blocking the round-1 return is what makes X₁ safe.
	blocked := false
	for _, e := range mc.view {
		if !e.Valid {
			if 0 >= mc.mine.Round-1 {
				blocked = true
			}
			continue
		}
		if e.Round >= mc.mine.Round-1 {
			eMin = math.Min(eMin, e.Prefer)
			eMax = math.Max(eMax, e.Prefer)
		}
		if e.Round == maxRound {
			lMin = math.Min(lMin, e.Prefer)
			lMax = math.Max(lMax, e.Prefer)
		}
	}
	switch {
	case !blocked && eMax-eMin < mc.eps/2:
		// Lines 13–14: return r[P].prefer.
		mc.result = mc.mine.Prefer
		mc.ph = phDone
	case lMax-lMin < mc.eps/2 || mc.advance:
		// Line 16: advance to midpoint of the leaders.
		mc.pending = Entry{
			Round:  mc.mine.Round + 1,
			Prefer: (lMin + lMax) / 2,
			Valid:  true,
		}
		mc.ph = phWrite
		mc.i = 0
	default:
		// Line 19: rescan once before advancing.
		if mc.probe != nil {
			mc.probe.Event(mc.proc, obs.EvRetry)
		}
		mc.advance = true
		mc.i = 0
	}
}

// StepBound is the Theorem 5 upper bound on steps per process:
// (2n+1)·log₂(Δ/ε) + O(n). The additive term covers the input steps,
// the final scans, and the +1 round of slack the proof allows
// ("every process returns on or before round r+1").
func StepBound(n int, delta, eps float64) int {
	if delta <= eps {
		// Already within tolerance: a constant number of rounds.
		return 3 * (2*n + 1)
	}
	rounds := math.Ceil(math.Log2(delta/eps)) + 3
	return int(float64(2*n+1)*rounds) + 4*n
}

// LowerBound is the Lemma 6 adversary floor: ⌊log₃(Δ/ε)⌋ steps for
// some process in any deterministic implementation, for two processes.
func LowerBound(delta, eps float64) int {
	if delta <= eps {
		return 0
	}
	return int(math.Floor(math.Log(delta/eps) / math.Log(3)))
}
