package agreement

import (
	"math"
	"testing"
)

func TestPreferenceOracleDoesNotPerturb(t *testing.T) {
	sys := NewSystem([]float64{0, 1}, 0.01)
	sys.Step(0)
	sys.Step(1)
	before := sys.Mem.Counters()
	if _, err := Preference(sys, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Preference(sys, 1); err != nil {
		t.Fatal(err)
	}
	after := sys.Mem.Counters()
	if after.Accesses() != before.Accesses() {
		t.Error("oracle performed accesses on the real system")
	}
	if sys.Machines[0].Done() || sys.Machines[1].Done() {
		t.Error("oracle completed a real machine")
	}
}

func TestPreferenceIsOwnInputInitially(t *testing.T) {
	// "Initially, each process's preference is its input."
	sys := NewSystem([]float64{3, 8}, 0.5)
	p0, err := Preference(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Preference(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 3 || p1 != 8 {
		t.Errorf("initial preferences = %v, %v; want 3, 8", p0, p1)
	}
}

func TestPreferenceStableUnderOwnSteps(t *testing.T) {
	// A process's preference can only change as the result of a step
	// by another process.
	sys := NewSystem([]float64{0, 1}, 0.01)
	for i := 0; i < 10; i++ {
		before, err := Preference(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Machines[0].Done() {
			break
		}
		sys.Step(0)
		after, err := Preference(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		if before != after {
			t.Fatalf("step %d: own step changed own preference %v -> %v", i, before, after)
		}
	}
}

// TestAdversaryForcesLowerBound is the Lemma 6 reproduction: for
// ε = Δ/3^k the adversary forces at least k steps on some process —
// we check the stronger statement that it forces ≥ k on both.
func TestAdversaryForcesLowerBound(t *testing.T) {
	for k := 1; k <= 6; k++ {
		eps := 1.0 / math.Pow(3, float64(k))
		sys := NewSystem([]float64{0, 1}, eps)
		rep, err := RunAdversary(sys, 2_000_000)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := uint64(LowerBound(1, eps))
		if rep.MinSteps() < want {
			t.Errorf("k=%d: adversary forced only %d steps, want >= %d", k, rep.MinSteps(), want)
		}
		if gap := math.Abs(rep.Results[0] - rep.Results[1]); gap >= eps {
			t.Errorf("k=%d: final results differ by %v >= eps %v", k, gap, eps)
		}
		for _, r := range rep.Results {
			if r < 0 || r > 1 {
				t.Errorf("k=%d: result %v outside input range", k, r)
			}
		}
	}
}

// TestAdversaryShrinkPerChoice: each three-way choice keeps the
// preference gap at at least one third of its previous value.
func TestAdversaryShrinkPerChoice(t *testing.T) {
	eps := 1.0 / 243
	sys := NewSystem([]float64{0, 1}, eps)
	rep, err := RunAdversary(sys, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Choices < 2 {
		t.Fatalf("adversary reached only %d choice points", rep.Choices)
	}
	for i := 1; i < len(rep.GapTrace); i++ {
		prev, cur := rep.GapTrace[i-1], rep.GapTrace[i]
		if prev <= 0 {
			continue
		}
		if cur < prev/3-1e-12 {
			t.Errorf("choice %d: gap shrank from %v to %v (< 1/3)", i, prev, cur)
		}
	}
}

func TestAdversaryRejectsWrongArity(t *testing.T) {
	sys := NewSystem([]float64{0, 1, 2}, 0.1)
	if _, err := RunAdversary(sys, 1000); err == nil {
		t.Error("expected error for 3-process system")
	}
}
