package agreement

import (
	"math"
	"sync"
	"testing"

	"repro/internal/pram"
	"repro/internal/sched"
)

// The approximate agreement object is long-lived (the paper's central
// theme): output may be invoked repeatedly, and every output ever
// produced must stay within ε of every other and inside the input
// range. These tests exercise the long-lived surface of the native
// implementation.

func TestNativeRepeatedOutputsConsistent(t *testing.T) {
	a := NewNative(3, 1e-3)
	a.Input(0, 0)
	a.Input(1, 1)
	a.Input(2, 0.25)
	var all []float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				v := a.Output(p)
				mu.Lock()
				all = append(all, v)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range all {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
		if v < 0 || v > 1 {
			t.Fatalf("output %v outside input range", v)
		}
	}
	if hi-lo >= 1e-3 {
		t.Fatalf("outputs across repeated calls span %v >= eps", hi-lo)
	}
}

func TestNativeRepeatedOutputsSameProcessStable(t *testing.T) {
	// Once a process has decided, its later outputs must stay within
	// eps of the first — and, since the algorithm returns its own
	// preference and only ever advances toward the leaders, in practice
	// they coincide.
	a := NewNative(2, 0.01)
	a.Input(0, 3)
	a.Input(1, 4)
	first := a.Output(0)
	for k := 0; k < 5; k++ {
		if got := a.Output(0); math.Abs(got-first) >= 0.01 {
			t.Fatalf("output %d drifted: %v vs %v", k, got, first)
		}
	}
}

// TestSoakAgreement is the long randomized campaign: many geometries,
// tolerances, and schedules in one sweep. It is quick enough to stay
// in the default run but can be skipped with -short.
func TestSoakAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	count := 0
	for _, n := range []int{2, 3, 4, 6, 9, 12} {
		for _, epsExp := range []int{1, 3, 5} {
			for seed := int64(0); seed < 6; seed++ {
				eps := math.Pow(10, -float64(epsExp))
				inputs := make([]float64, n)
				for i := range inputs {
					inputs[i] = float64((i*7919+int(seed)*104729)%1000) / 10
				}
				var s pram.Scheduler
				switch seed % 3 {
				case 0:
					s = sched.NewRoundRobin()
				case 1:
					s = sched.NewRandom(seed)
				default:
					s = sched.NewBursty(seed, 3+int(seed)%11)
				}
				sys := NewSystem(inputs, eps)
				// Run panics on any Figure 1 violation.
				if _, err := Run(sys, s, inputs, eps, 0); err != nil {
					t.Fatalf("n=%d eps=%v seed=%d: %v", n, eps, seed, err)
				}
				count++
			}
		}
	}
	if count != 108 {
		t.Fatalf("soak ran %d configurations, want 108", count)
	}
}
