package agreement

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestNativeSingle(t *testing.T) {
	a := NewNative(1, 0.5)
	if got := a.Agree(0, 12.5); got != 12.5 {
		t.Errorf("Agree = %v, want 12.5", got)
	}
}

func TestNativeConcurrentAgreement(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		for _, eps := range []float64{0.1, 1e-3} {
			a := NewNative(n, eps)
			inputs := make([]float64, n)
			rng := rand.New(rand.NewSource(int64(n)))
			for i := range inputs {
				inputs[i] = rng.Float64() * 1000
			}
			results := make([]float64, n)
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					results[p] = a.Agree(p, inputs[p])
				}(p)
			}
			wg.Wait()
			lo, hi := math.Inf(1), math.Inf(-1)
			ilo, ihi := math.Inf(1), math.Inf(-1)
			for p := 0; p < n; p++ {
				lo, hi = math.Min(lo, results[p]), math.Max(hi, results[p])
				ilo, ihi = math.Min(ilo, inputs[p]), math.Max(ihi, inputs[p])
			}
			if hi-lo >= eps {
				t.Errorf("n=%d eps=%v: outputs span %v", n, eps, hi-lo)
			}
			if lo < ilo || hi > ihi {
				t.Errorf("n=%d eps=%v: outputs [%v,%v] escape inputs [%v,%v]",
					n, eps, lo, hi, ilo, ihi)
			}
		}
	}
}

// TestNativeWaitFreeDespiteStalledPeer: a peer that calls Input and
// then stops for ever must not prevent the others from deciding.
func TestNativeWaitFreeDespiteStalledPeer(t *testing.T) {
	a := NewNative(3, 1e-3)
	a.Input(2, 1000) // the stalled peer contributes a far-away input...
	// ...and never calls Output. The others must still finish.
	done := make(chan float64, 2)
	go func() { done <- a.Agree(0, 0) }()
	go func() { done <- a.Agree(1, 1) }()
	r1, r2 := <-done, <-done
	if math.Abs(r1-r2) >= 1e-3 {
		t.Errorf("survivors disagree: %v vs %v", r1, r2)
	}
	if r1 < 0 || r1 > 1000 {
		t.Errorf("output %v outside input range", r1)
	}
}

func TestNativeInputIdempotent(t *testing.T) {
	a := NewNative(2, 0.5)
	a.Input(0, 5)
	a.Input(0, 500)
	if got := a.Output(0); got != 5 {
		t.Errorf("Output = %v, want first input 5", got)
	}
}

func TestNativeLateOutputAgrees(t *testing.T) {
	a := NewNative(2, 0.01)
	a.Input(0, 0)
	a.Input(1, 1)
	first := a.Output(0)
	second := a.Output(1)
	if math.Abs(first-second) >= 0.01 {
		t.Errorf("late output %v disagrees with %v", second, first)
	}
}

func TestNativeOutputBeforeInputPanics(t *testing.T) {
	a := NewNative(2, 0.5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Output(0)
}

func TestNativeValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewNative(0, 1) },
		func() { NewNative(2, 0) },
		func() { NewNative(2, 1).Input(2, 0) },
		func() { NewNative(2, 1).Input(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNativeAccessors(t *testing.T) {
	a := NewNative(4, 0.25)
	if a.N() != 4 || a.Eps() != 0.25 {
		t.Errorf("N=%d Eps=%v", a.N(), a.Eps())
	}
}

// TestNativeRepeatedRounds runs many independent agreement instances
// concurrently to shake out races (run with -race).
func TestNativeRepeatedRounds(t *testing.T) {
	const n, iters = 4, 50
	for it := 0; it < iters; it++ {
		a := NewNative(n, 0.05)
		var wg sync.WaitGroup
		out := make([]float64, n)
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				out[p] = a.Agree(p, float64((p*7+it)%13))
			}(p)
		}
		wg.Wait()
		for p := 1; p < n; p++ {
			if math.Abs(out[p]-out[0]) >= 0.05 {
				t.Fatalf("iter %d: outputs %v not within eps", it, out)
			}
		}
	}
}
