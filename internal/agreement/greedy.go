package agreement

import (
	"fmt"
	"math"

	"repro/internal/pram"
)

// This file generalizes the Lemma 6 adversary beyond two processes
// with a greedy heuristic: at every step it forks the system once per
// runnable process, evaluates how the preference spread would evolve,
// and takes the step that keeps the spread largest. Lemma 6's
// three-way case analysis is exact for n = 2; for n > 2 greedy
// lookahead is a heuristic — the Hoest–Shavit result the paper cites
// says no adversary can beat the log₂ rate for three or more
// processes, and the measurements agree (experiment E9).

// GreedyReport describes a greedy-adversary run.
type GreedyReport struct {
	// StepsBy is each process's step count when the run ended.
	StepsBy []uint64
	// SpreadTrace records the preference spread after each chosen
	// step.
	SpreadTrace []float64
	// Results are the final outputs.
	Results []float64
}

// MaxSteps returns the largest per-process step count.
func (r GreedyReport) MaxSteps() uint64 {
	var m uint64
	for _, s := range r.StepsBy {
		if s > m {
			m = s
		}
	}
	return m
}

// spread returns the max-min gap of all processes' preferences.
func spread(sys *pram.System) (float64, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for p := range sys.Machines {
		v, err := Preference(sys, p)
		if err != nil {
			return 0, err
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return hi - lo, nil
}

// RunGreedyAdversary drives the system to completion, maximizing the
// preference spread with one-step lookahead. maxSteps bounds the run
// as a safety net (0 means the oracle budget alone applies).
func RunGreedyAdversary(sys *pram.System, maxSteps int) (GreedyReport, error) {
	var rep GreedyReport
	taken := 0
	for !sys.Done() {
		if maxSteps > 0 && taken >= maxSteps {
			return rep, pram.ErrStepLimit
		}
		running := sys.Running()
		bestP, bestSpread := -1, math.Inf(-1)
		for _, p := range running {
			fork := sys.Clone()
			fork.Step(p)
			s, err := spread(fork)
			if err != nil {
				return rep, err
			}
			if s > bestSpread {
				bestP, bestSpread = p, s
			}
		}
		if bestP == -1 {
			return rep, fmt.Errorf("agreement: no runnable process")
		}
		sys.Step(bestP)
		rep.SpreadTrace = append(rep.SpreadTrace, bestSpread)
		taken++
	}
	rep.StepsBy = append([]uint64(nil), sys.Steps...)
	rep.Results = make([]float64, len(sys.Machines))
	for p, mc := range sys.Machines {
		rep.Results[p] = mc.(*Machine).Result()
	}
	return rep, nil
}
