package agreement

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/apram/obs"
)

// Native is the goroutine-ready implementation of the approximate
// agreement object: the same algorithm as Figure 2, with the simulated
// registers replaced by atomic pointers. Each process index owns its
// register; distinct process indices may run concurrently from
// different goroutines, and every operation is wait-free — it completes
// in a bounded number of its own steps regardless of what other
// goroutines do (including stopping for ever).
type Native struct {
	eps  float64
	regs []atomic.Pointer[Entry]

	probe obs.Probe // nil when uninstrumented
}

// NewNative returns an n-process approximate agreement object with
// tolerance eps > 0.
func NewNative(n int, eps float64) *Native {
	if n <= 0 {
		panic("agreement: need at least one process")
	}
	if eps <= 0 {
		panic("agreement: eps must be positive")
	}
	a := &Native{eps: eps, regs: make([]atomic.Pointer[Entry], n)}
	zero := &Entry{}
	for i := range a.regs {
		a.regs[i].Store(zero)
	}
	return a
}

// Instrument attaches a probe: exact register read/write counts, an
// obs.EvRound per preference-halving round, an obs.EvRetry per pass
// that could neither return nor advance, and an obs.OpAgree per
// completed Output. Attach before the object is shared.
func (a *Native) Instrument(p obs.Probe) { a.probe = p }

// N returns the number of process slots.
func (a *Native) N() int { return len(a.regs) }

// Eps returns the agreement tolerance ε.
func (a *Native) Eps() float64 { return a.eps }

// Input records process p's input value x. Only the first Input by a
// given process has any effect, matching lines 1–5 of Figure 2.
func (a *Native) Input(p int, x float64) {
	a.check(p)
	if e := a.regs[p].Load(); e.Valid {
		if a.probe != nil {
			a.probe.RegReads(p, 1)
		}
		return
	}
	a.regs[p].Store(&Entry{Round: 1, Prefer: x, Valid: true})
	if a.probe != nil {
		a.probe.RegReads(p, 1)
		a.probe.RegWrites(p, 1)
	}
}

// Output runs the wait-free approximate agreement protocol for process
// p and returns its decision. Output panics if p has not called Input:
// the operation's precondition (Figure 1) is X ≠ ∅, and this
// implementation requires the caller to have contributed.
func (a *Native) Output(p int) float64 {
	a.check(p)
	if a.probe != nil {
		obs.Begin(a.probe, p, obs.OpAgree)
	}
	mine := a.regs[p].Load()
	if !mine.Valid {
		panic("agreement: Output before Input")
	}
	// Register accesses measured at their callsites; reported when the
	// operation returns.
	reads, writes := 1, 0
	advance := false
	view := make([]*Entry, len(a.regs))
	for {
		for i := range a.regs {
			view[i] = a.regs[i].Load()
		}
		reads += len(a.regs)
		maxRound := 0
		for _, e := range view {
			if e.Valid && e.Round > maxRound {
				maxRound = e.Round
			}
		}
		eMin, eMax := math.Inf(1), math.Inf(-1)
		lMin, lMax := math.Inf(1), math.Inf(-1)
		// See Machine.decide: a ⊥ entry inside the round window blocks
		// the round-1 return so late inputs cannot break agreement.
		blocked := false
		for _, e := range view {
			if !e.Valid {
				if 0 >= mine.Round-1 {
					blocked = true
				}
				continue
			}
			if e.Round >= mine.Round-1 {
				eMin = math.Min(eMin, e.Prefer)
				eMax = math.Max(eMax, e.Prefer)
			}
			if e.Round == maxRound {
				lMin = math.Min(lMin, e.Prefer)
				lMax = math.Max(lMax, e.Prefer)
			}
		}
		switch {
		case !blocked && eMax-eMin < a.eps/2:
			if a.probe != nil {
				a.probe.RegReads(p, reads)
				a.probe.RegWrites(p, writes)
				a.probe.OpDone(p, obs.OpAgree)
			}
			return mine.Prefer
		case lMax-lMin < a.eps/2 || advance:
			mine = &Entry{Round: mine.Round + 1, Prefer: (lMin + lMax) / 2, Valid: true}
			a.regs[p].Store(mine)
			writes++
			if a.probe != nil {
				a.probe.Event(p, obs.EvRound)
			}
			advance = false
		default:
			if a.probe != nil {
				a.probe.Event(p, obs.EvRetry)
			}
			advance = true
		}
	}
}

// Agree is the common one-shot pattern: record x, then decide.
func (a *Native) Agree(p int, x float64) float64 {
	a.Input(p, x)
	return a.Output(p)
}

func (a *Native) check(p int) {
	if p < 0 || p >= len(a.regs) {
		panic(fmt.Sprintf("agreement: process %d out of range [0,%d)", p, len(a.regs)))
	}
}
