package agreement

import (
	"math"

	"repro/internal/pram"
)

// NewSystem builds a simulated system of len(inputs) processes, each
// running input(x) followed by output() on one shared approximate
// agreement object with tolerance eps.
func NewSystem(inputs []float64, eps float64) *pram.System {
	n := len(inputs)
	mem := pram.NewMem(n, n)
	lay := Layout{Base: 0, N: n}
	lay.Install(mem)
	machines := make([]pram.Machine, n)
	for p, x := range inputs {
		machines[p] = NewMachine(p, x, eps, lay)
	}
	return pram.NewSystem(mem, machines)
}

// RoundTracker observes writes to an agreement object's registers and
// accumulates, per round r, the range of all r-preferences written —
// the X_r sets of Lemmas 1–3.
type RoundTracker struct {
	min, max []float64
}

// Attach installs the tracker on m. It must be called before the run
// starts and replaces any previously installed write hook.
func (t *RoundTracker) Attach(m *pram.Mem) {
	m.Observe(nil, func(p, r int, v pram.Value) {
		e, ok := v.(Entry)
		if !ok || !e.Valid {
			return
		}
		for len(t.min) <= e.Round {
			t.min = append(t.min, math.Inf(1))
			t.max = append(t.max, math.Inf(-1))
		}
		t.min[e.Round] = math.Min(t.min[e.Round], e.Prefer)
		t.max[e.Round] = math.Max(t.max[e.Round], e.Prefer)
	})
}

// MaxRound returns the highest round for which any preference was
// written.
func (t *RoundTracker) MaxRound() int { return len(t.min) - 1 }

// Range returns |range(X_r)|, or 0 if no r-preference was written.
func (t *RoundTracker) Range(r int) float64 {
	if r >= len(t.min) || t.min[r] > t.max[r] {
		return 0
	}
	return t.max[r] - t.min[r]
}

// Bounds returns (min, max, ok) of X_r.
func (t *RoundTracker) Bounds(r int) (float64, float64, bool) {
	if r >= len(t.min) || t.min[r] > t.max[r] {
		return 0, 0, false
	}
	return t.min[r], t.max[r], true
}

// ShrinkRatios returns range(X_r)/range(X_{r-1}) for every pair of
// consecutive non-empty rounds with positive predecessor range. Lemma 3
// says every ratio is at most 1/2.
func (t *RoundTracker) ShrinkRatios() []float64 {
	var out []float64
	for r := 2; r <= t.MaxRound(); r++ {
		prev := t.Range(r - 1)
		if prev <= 0 {
			continue
		}
		if _, _, ok := t.Bounds(r); !ok {
			continue
		}
		out = append(out, t.Range(r)/prev)
	}
	return out
}

// Outcome summarizes a completed simulated run.
type Outcome struct {
	// Results holds each process's output.
	Results []float64
	// StepsBy holds each process's shared-memory accesses.
	StepsBy []uint64
	// Rounds holds each process's completed advances.
	Rounds []int
	// InputRange is |range(X)| of the inputs.
	InputRange float64
	// OutputRange is |range(Y)| of the outputs.
	OutputRange float64
}

// MaxSteps returns the largest per-process step count.
func (o Outcome) MaxSteps() uint64 {
	var m uint64
	for _, s := range o.StepsBy {
		if s > m {
			m = s
		}
	}
	return m
}

// Run executes the system under sched and collects the outcome. It
// validates the Figure 1 postconditions — every output within the
// input range, outputs within eps of each other — returning an error
// from the run if scheduling failed, and panicking on a specification
// violation (that is an algorithm bug, not a caller error).
func Run(sys *pram.System, sched pram.Scheduler, inputs []float64, eps float64, maxSteps int) (Outcome, error) {
	var out Outcome
	if err := sys.Run(sched, maxSteps); err != nil {
		return out, err
	}
	out.Results = make([]float64, len(sys.Machines))
	out.Rounds = make([]int, len(sys.Machines))
	out.StepsBy = make([]uint64, len(sys.Machines))
	oMin, oMax := math.Inf(1), math.Inf(-1)
	for p, mc := range sys.Machines {
		am := mc.(*Machine)
		out.Results[p] = am.Result()
		out.Rounds[p] = am.Rounds()
		out.StepsBy[p] = sys.Mem.Counters().AccessesBy(p)
		oMin = math.Min(oMin, out.Results[p])
		oMax = math.Max(oMax, out.Results[p])
	}
	iMin, iMax := math.Inf(1), math.Inf(-1)
	for _, x := range inputs {
		iMin = math.Min(iMin, x)
		iMax = math.Max(iMax, x)
	}
	out.InputRange = iMax - iMin
	out.OutputRange = oMax - oMin
	if oMin < iMin || oMax > iMax {
		panic("agreement: output outside input range (validity violated)")
	}
	if out.OutputRange >= eps {
		panic("agreement: outputs differ by ≥ eps (agreement violated)")
	}
	return out, nil
}
