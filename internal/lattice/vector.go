package lattice

// Cell is one slot of a tagged vector: a payload plus a monotonically
// increasing tag. The maximum of two cells is the one with the higher
// tag. A zero tag denotes "empty" (the ⊥ contribution for that slot),
// matching the paper's construction in Section 6: "Each array entry has
// an associated tag, and the maximum of two entries is the one with the
// higher tag. ... The ⊥ value is just an array whose tags are all
// zero."
type Cell struct {
	Tag uint64 // 0 means empty
	Val any    // payload; must be treated as immutable
}

// Vec is an element of the tagged-vector lattice: one cell per process.
// It is the lattice the paper uses to turn the semilattice scan into an
// atomic snapshot of an n-element single-writer array. Vec values are
// immutable; Join allocates a fresh vector.
type Vec []Cell

// Vector is the ∨-semilattice of N-cell tagged vectors. The join is
// the element-wise tag maximum. Ties on tag are benign because each
// slot is written by a single process with strictly increasing tags, so
// equal tags imply equal cells.
type Vector struct {
	// N is the vector length (number of processes).
	N int
}

// Bottom returns the all-empty vector.
func (l Vector) Bottom() any { return make(Vec, l.N) }

// Join returns the element-wise maximum-tag vector of a and b.
func (l Vector) Join(a, b any) any {
	x, y := a.(Vec), b.(Vec)
	l.check(x)
	l.check(y)
	out := make(Vec, l.N)
	for i := range out {
		if x[i].Tag >= y[i].Tag {
			out[i] = x[i]
		} else {
			out[i] = y[i]
		}
	}
	return out
}

// Leq reports whether every cell of a has a tag ≤ the corresponding
// cell of b.
func (l Vector) Leq(a, b any) bool {
	x, y := a.(Vec), b.(Vec)
	l.check(x)
	l.check(y)
	for i := range x {
		if x[i].Tag > y[i].Tag {
			return false
		}
	}
	return true
}

func (l Vector) check(v Vec) {
	if len(v) != l.N {
		panic("lattice: vector length does not match lattice dimension")
	}
}

// Single returns the vector that is empty everywhere except slot i,
// which holds (tag, val). This is how process i publishes a new value:
// the single-cell vector joins into the array state as "process i's
// latest value", exactly as described at the end of Section 6.
func (l Vector) Single(i int, tag uint64, val any) Vec {
	v := make(Vec, l.N)
	v[i] = Cell{Tag: tag, Val: val}
	return v
}
