package lattice

import (
	"math/rand"
	"testing"
)

// TestInPlaceAgreesWithJoin: accumulating a batch in place must equal
// the generic fold, and must not mutate the inputs.
func TestInPlaceAgreesWithJoin(t *testing.T) {
	cases := []struct {
		name string
		l    InPlace
		gen  generator
	}{
		{"Vector", Vector{N: 5}, genVec(5)},
		{"MapMax", MapMax{}, genIntMap},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 100; trial++ {
				vals := make([]any, 1+rng.Intn(6))
				for i := range vals {
					vals[i] = tc.gen(rng)
				}
				want := JoinAll(tc.l, vals...)
				acc := tc.l.NewAccum(tc.l.Bottom())
				for _, v := range vals {
					acc = tc.l.Accumulate(acc, v)
				}
				got := tc.l.Freeze(acc)
				if !Equal(tc.l, got, want) {
					t.Fatalf("trial %d: in-place %v != generic %v", trial, got, want)
				}
			}
		})
	}
}

func TestInPlaceDoesNotMutateInputs(t *testing.T) {
	l := Vector{N: 2}
	a := l.Single(0, 5, "a")
	b := l.Single(1, 7, "b")
	acc := l.NewAccum(a)
	l.Accumulate(acc, b)
	if a[1].Tag != 0 {
		t.Error("Accumulate mutated a source element")
	}
	if b[0].Tag != 0 {
		t.Error("Accumulate mutated a source element")
	}
}

func TestNewAccumCopies(t *testing.T) {
	l := Vector{N: 2}
	a := l.Single(0, 5, "a")
	acc := l.NewAccum(a).(Vec)
	acc[1] = Cell{Tag: 9, Val: "mut"}
	if a[1].Tag != 0 {
		t.Error("NewAccum aliased its input")
	}

	m := IntMap{"x": 3}
	macc := MapMax{}.NewAccum(m).(IntMap)
	macc["y"] = 9
	if _, ok := m["y"]; ok {
		t.Error("MapMax.NewAccum aliased its input")
	}
}
