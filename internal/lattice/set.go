package lattice

import "sort"

// Set is an element of the set-union lattice: an immutable set of
// string keys. The zero value is the empty set (which is also ⊥).
type Set map[string]struct{}

// NewSet builds a Set from keys.
func NewSet(keys ...string) Set {
	s := make(Set, len(keys))
	for _, k := range keys {
		s[k] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set) Has(k string) bool { _, ok := s[k]; return ok }

// Keys returns the members in sorted order.
func (s Set) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetUnion is the ∨-semilattice of string sets under union, with the
// empty set as ⊥. It models grow-only set abstractions ("certain kinds
// of set abstractions", Section 1).
type SetUnion struct{}

// Bottom returns the empty set.
func (SetUnion) Bottom() any { return Set(nil) }

// Join returns the union of a and b without mutating either.
func (SetUnion) Join(a, b any) any {
	x, y := a.(Set), b.(Set)
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make(Set, len(x)+len(y))
	for k := range x {
		out[k] = struct{}{}
	}
	for k := range y {
		out[k] = struct{}{}
	}
	return out
}

// Leq reports a ⊆ b.
func (SetUnion) Leq(a, b any) bool {
	x, y := a.(Set), b.(Set)
	if len(x) > len(y) {
		return false
	}
	for k := range x {
		if _, ok := y[k]; !ok {
			return false
		}
	}
	return true
}

// MapMax is the ∨-semilattice of string→int64 maps joined by key-wise
// maximum, with the empty map as ⊥. It models vector clocks and other
// per-key monotone counters.
type MapMax struct{}

// IntMap is an element of MapMax. Treated as immutable.
type IntMap map[string]int64

// Bottom returns the empty map.
func (MapMax) Bottom() any { return IntMap(nil) }

// Join returns the key-wise maximum of a and b.
func (MapMax) Join(a, b any) any {
	x, y := a.(IntMap), b.(IntMap)
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make(IntMap, len(x)+len(y))
	for k, v := range x {
		out[k] = v
	}
	for k, v := range y {
		if cur, ok := out[k]; !ok || v > cur {
			out[k] = v
		}
	}
	return out
}

// Leq reports whether every key of a maps to a value ≤ b's value for
// that key (missing keys count as −∞).
func (MapMax) Leq(a, b any) bool {
	x, y := a.(IntMap), b.(IntMap)
	for k, v := range x {
		w, ok := y[k]
		if !ok || v > w {
			return false
		}
	}
	return true
}

// Product is the component-wise product of two lattices: elements are
// Pair values, joined component-wise. Products let callers snapshot two
// unrelated monotone quantities atomically with a single scan.
type Product struct {
	A, B Lattice
}

// Pair is an element of a Product lattice.
type Pair struct {
	First, Second any
}

// Bottom returns the pair of component bottoms.
func (l Product) Bottom() any { return Pair{l.A.Bottom(), l.B.Bottom()} }

// Join joins component-wise.
func (l Product) Join(a, b any) any {
	x, y := a.(Pair), b.(Pair)
	return Pair{l.A.Join(x.First, y.First), l.B.Join(x.Second, y.Second)}
}

// Leq compares component-wise.
func (l Product) Leq(a, b any) bool {
	x, y := a.(Pair), b.(Pair)
	return l.A.Leq(x.First, y.First) && l.B.Leq(x.Second, y.Second)
}
