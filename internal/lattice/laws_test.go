package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// generator produces random elements of a lattice for property tests.
type generator func(r *rand.Rand) any

func genMaxInt(r *rand.Rand) any {
	if r.Intn(8) == 0 {
		return MaxInt{}.Bottom()
	}
	return int64(r.Intn(2000) - 1000)
}

func genMaxFloat(r *rand.Rand) any {
	if r.Intn(8) == 0 {
		return MaxFloat{}.Bottom()
	}
	return r.NormFloat64() * 100
}

func genVec(n int) generator {
	return func(r *rand.Rand) any {
		v := make(Vec, n)
		for i := range v {
			if r.Intn(2) == 0 {
				v[i] = Cell{Tag: uint64(r.Intn(50)) + 1, Val: r.Intn(100)}
			}
		}
		return v
	}
}

func genSet(r *rand.Rand) any {
	words := []string{"a", "b", "c", "d", "e", "f", "g"}
	s := make(Set)
	for _, w := range words {
		if r.Intn(2) == 0 {
			s[w] = struct{}{}
		}
	}
	return s
}

func genIntMap(r *rand.Rand) any {
	keys := []string{"x", "y", "z", "w"}
	m := make(IntMap)
	for _, k := range keys {
		if r.Intn(2) == 0 {
			m[k] = int64(r.Intn(20))
		}
	}
	return m
}

func lattices(n int) map[string]struct {
	l   Lattice
	gen generator
} {
	prod := Product{A: MaxInt{}, B: SetUnion{}}
	return map[string]struct {
		l   Lattice
		gen generator
	}{
		"MaxInt":   {MaxInt{}, genMaxInt},
		"MaxFloat": {MaxFloat{}, genMaxFloat},
		"Vector":   {Vector{N: n}, genVec(n)},
		"SetUnion": {SetUnion{}, genSet},
		"MapMax":   {MapMax{}, genIntMap},
		"Product": {prod, func(r *rand.Rand) any {
			return Pair{genMaxInt(r), genSet(r)}
		}},
	}
}

// TestLatticeLaws property-checks the semilattice axioms for every
// lattice implementation: idempotence, commutativity, associativity,
// bottom identity, and the Leq/Join coherence law.
func TestLatticeLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	for name, tc := range lattices(4) {
		l, gen := tc.l, tc.gen
		t.Run(name+"/idempotent", func(t *testing.T) {
			if err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a := gen(r)
				return Equal(l, l.Join(a, a), a)
			}, cfg); err != nil {
				t.Error(err)
			}
		})
		t.Run(name+"/commutative", func(t *testing.T) {
			if err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a, b := gen(r), gen(r)
				return Equal(l, l.Join(a, b), l.Join(b, a))
			}, cfg); err != nil {
				t.Error(err)
			}
		})
		t.Run(name+"/associative", func(t *testing.T) {
			if err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a, b, c := gen(r), gen(r), gen(r)
				return Equal(l, l.Join(l.Join(a, b), c), l.Join(a, l.Join(b, c)))
			}, cfg); err != nil {
				t.Error(err)
			}
		})
		t.Run(name+"/bottom", func(t *testing.T) {
			if err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a := gen(r)
				return Equal(l, l.Join(l.Bottom(), a), a) && l.Leq(l.Bottom(), a)
			}, cfg); err != nil {
				t.Error(err)
			}
		})
		t.Run(name+"/coherence", func(t *testing.T) {
			// Leq(a, b) iff Join(a, b) == b.
			if err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a, b := gen(r), gen(r)
				return l.Leq(a, b) == Equal(l, l.Join(a, b), b)
			}, cfg); err != nil {
				t.Error(err)
			}
		})
		t.Run(name+"/joinUpperBound", func(t *testing.T) {
			if err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a, b := gen(r), gen(r)
				j := l.Join(a, b)
				return l.Leq(a, j) && l.Leq(b, j)
			}, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestJoinAll(t *testing.T) {
	l := MaxInt{}
	if got := JoinAll(l); !Equal(l, got, l.Bottom()) {
		t.Errorf("JoinAll() = %v, want bottom", got)
	}
	if got := JoinAll(l, int64(3), int64(9), int64(-2)); got != int64(9) {
		t.Errorf("JoinAll = %v, want 9", got)
	}
}

func TestMaxIntBottomOrdering(t *testing.T) {
	l := MaxInt{}
	b := l.Bottom()
	if !l.Leq(b, int64(-1<<62)) {
		t.Error("bottom must be below every integer")
	}
	if l.Leq(int64(0), b) {
		t.Error("no integer is below bottom")
	}
	if !Equal(l, l.Join(b, b), b) {
		t.Error("join of bottoms must be bottom")
	}
}

func TestVectorSingle(t *testing.T) {
	l := Vector{N: 3}
	v := l.Single(1, 7, "payload")
	if v[0].Tag != 0 || v[2].Tag != 0 {
		t.Error("Single must leave other slots empty")
	}
	if v[1].Tag != 7 || v[1].Val != "payload" {
		t.Errorf("Single slot = %+v", v[1])
	}
	joined := l.Join(v, l.Single(1, 9, "newer")).(Vec)
	if joined[1].Tag != 9 || joined[1].Val != "newer" {
		t.Errorf("join must pick the higher tag, got %+v", joined[1])
	}
}

func TestVectorJoinDoesNotMutate(t *testing.T) {
	l := Vector{N: 2}
	a := l.Single(0, 1, "a")
	b := l.Single(1, 2, "b")
	_ = l.Join(a, b)
	if a[1].Tag != 0 || b[0].Tag != 0 {
		t.Error("Join mutated its arguments")
	}
}

func TestVectorDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	l := Vector{N: 2}
	l.Join(make(Vec, 2), make(Vec, 3))
}

func TestSetOperations(t *testing.T) {
	s := NewSet("b", "a", "c")
	if !s.Has("a") || s.Has("z") {
		t.Error("membership wrong")
	}
	keys := s.Keys()
	want := []string{"a", "b", "c"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
}

func TestSetUnionJoinDoesNotMutate(t *testing.T) {
	l := SetUnion{}
	a, b := NewSet("x"), NewSet("y")
	_ = l.Join(a, b)
	if a.Has("y") || b.Has("x") {
		t.Error("Join mutated its arguments")
	}
}

func TestMapMaxJoin(t *testing.T) {
	l := MapMax{}
	a := IntMap{"x": 3, "y": 10}
	b := IntMap{"x": 7, "z": 1}
	j := l.Join(a, b).(IntMap)
	if j["x"] != 7 || j["y"] != 10 || j["z"] != 1 {
		t.Errorf("Join = %v", j)
	}
}

func TestMaxFloatRejectsNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on NaN")
		}
	}()
	nan := 0.0
	nan /= nan // silence constant-folding; produce NaN at run time
	MaxFloat{}.Join(nan, 1.0)
}

func TestComparable(t *testing.T) {
	l := Vector{N: 2}
	a := l.Single(0, 1, nil)
	b := l.Single(1, 1, nil)
	if Comparable(l, a, b) {
		t.Error("disjoint singles must be incomparable")
	}
	j := l.Join(a, b)
	if !Comparable(l, a, j) || !Comparable(l, b, j) {
		t.Error("join must be comparable with both operands")
	}
}
