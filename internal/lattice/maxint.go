package lattice

// MaxInt is the ∨-semilattice of int64 values ordered by ≤, extended
// with a distinct bottom element below every integer. It is the
// simplest useful lattice: ReadMax over it yields a wait-free
// "maximum so far" register.
type MaxInt struct{}

// maxIntBottom is the ⊥ element of MaxInt. It is a private sentinel so
// that math.MinInt64 remains a usable carrier value.
type maxIntBottom struct{}

// Bottom returns ⊥.
func (MaxInt) Bottom() any { return maxIntBottom{} }

// Join returns the larger of a and b, treating ⊥ as the identity.
func (MaxInt) Join(a, b any) any {
	if _, ok := a.(maxIntBottom); ok {
		return b
	}
	if _, ok := b.(maxIntBottom); ok {
		return a
	}
	x, y := a.(int64), b.(int64)
	if x >= y {
		return x
	}
	return y
}

// Leq reports a ≤ b.
func (MaxInt) Leq(a, b any) bool {
	if _, ok := a.(maxIntBottom); ok {
		return true
	}
	if _, ok := b.(maxIntBottom); ok {
		return false
	}
	return a.(int64) <= b.(int64)
}

// MaxFloat is the ∨-semilattice of float64 values ordered by ≤ with a
// distinct bottom. NaN values are rejected by Join and Leq via panic:
// they have no place in a partial order.
type MaxFloat struct{}

type maxFloatBottom struct{}

// Bottom returns ⊥.
func (MaxFloat) Bottom() any { return maxFloatBottom{} }

// Join returns the larger of a and b, treating ⊥ as the identity.
func (MaxFloat) Join(a, b any) any {
	if _, ok := a.(maxFloatBottom); ok {
		return b
	}
	if _, ok := b.(maxFloatBottom); ok {
		return a
	}
	x, y := mustFloat(a), mustFloat(b)
	if x >= y {
		return x
	}
	return y
}

// Leq reports a ≤ b.
func (MaxFloat) Leq(a, b any) bool {
	if _, ok := a.(maxFloatBottom); ok {
		return true
	}
	if _, ok := b.(maxFloatBottom); ok {
		return false
	}
	return mustFloat(a) <= mustFloat(b)
}

func mustFloat(v any) float64 {
	f := v.(float64)
	if f != f {
		panic("lattice: NaN is not a lattice element")
	}
	return f
}
