// Package lattice provides the ∨-semilattices used by the atomic
// snapshot construction of Aspnes & Herlihy (Section 6).
//
// The atomic scan algorithm treats the shared array's state as the join
// of the values written to it: because the array state does not depend
// on the order in which distinct processes update their own elements,
// the scan simply returns the join of the register values. Every
// lattice here supplies a bottom element ⊥ with ⊥ ∨ x = x.
//
// Lattice elements are treated as immutable values: Join must never
// mutate its arguments, and callers must never modify an element after
// handing it to a register. This discipline is what makes lock-free
// publication through atomic pointers safe.
package lattice

// Lattice is a ∨-semilattice with a bottom element.
//
// Implementations must satisfy, for all elements a, b, c drawn from the
// lattice's carrier set:
//
//	Join(a, a) == a                    (idempotence)
//	Join(a, b) == Join(b, a)           (commutativity)
//	Join(Join(a, b), c) ==
//	    Join(a, Join(b, c))            (associativity)
//	Join(Bottom(), a) == a             (bottom)
//	Leq(a, b) iff Join(a, b) == b      (induced order)
//
// These laws are validated for every implementation by property-based
// tests (see laws_test.go).
type Lattice interface {
	// Bottom returns the least element ⊥.
	Bottom() any
	// Join returns the least upper bound of a and b. It must not
	// mutate either argument.
	Join(a, b any) any
	// Leq reports whether a ≤ b in the induced partial order.
	Leq(a, b any) bool
}

// Equal reports whether a and b are the same element of l, using the
// antisymmetry of the induced order: a == b iff a ≤ b and b ≤ a.
func Equal(l Lattice, a, b any) bool {
	return l.Leq(a, b) && l.Leq(b, a)
}

// Comparable reports whether a and b are ordered either way. The key
// correctness property of the atomic scan (Lemma 32) is that any two
// returned values are comparable.
func Comparable(l Lattice, a, b any) bool {
	return l.Leq(a, b) || l.Leq(b, a)
}

// JoinAll folds Join over vs, starting from Bottom. An empty argument
// list yields Bottom.
func JoinAll(l Lattice, vs ...any) any {
	acc := l.Bottom()
	for _, v := range vs {
		acc = l.Join(acc, v)
	}
	return acc
}
