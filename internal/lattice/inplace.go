package lattice

// InPlace is an optional fast path for hot join loops: a lattice that
// can accumulate joins into a mutable scratch value instead of
// allocating a fresh element per join. The atomic snapshot's inner
// loop joins n−1 register values per pass; with the generic Join that
// is n−1 allocations per pass, with InPlace it is one.
//
// Contract: acc values returned by NewAccum are private to the caller
// until passed to Freeze; Accumulate may mutate acc and must return
// it; Freeze ends the accumulation and returns an element that must
// thereafter be treated as immutable (implementations may return acc
// itself — the caller promises not to touch the accumulator again).
type InPlace interface {
	Lattice
	// NewAccum returns a fresh mutable accumulator holding v.
	NewAccum(v any) any
	// Accumulate joins x into acc, mutating and returning acc.
	Accumulate(acc, x any) any
	// Freeze finalizes acc into an immutable lattice element.
	Freeze(acc any) any
}

// NewAccum copies v into a mutable vector accumulator.
func (l Vector) NewAccum(v any) any {
	src := v.(Vec)
	l.check(src)
	out := make(Vec, l.N)
	copy(out, src)
	return out
}

// Accumulate performs the element-wise maximum-tag join in place.
func (l Vector) Accumulate(acc, x any) any {
	dst, src := acc.(Vec), x.(Vec)
	l.check(dst)
	l.check(src)
	for i := range dst {
		if src[i].Tag > dst[i].Tag {
			dst[i] = src[i]
		}
	}
	return dst
}

// Freeze returns the accumulator as the final element; the caller must
// not mutate it afterwards.
func (l Vector) Freeze(acc any) any { return acc }

// NewAccum copies v into a mutable map accumulator.
func (MapMax) NewAccum(v any) any {
	src := v.(IntMap)
	out := make(IntMap, len(src)+4)
	for k, val := range src {
		out[k] = val
	}
	return out
}

// Accumulate performs the key-wise maximum join in place.
func (MapMax) Accumulate(acc, x any) any {
	dst, src := acc.(IntMap), x.(IntMap)
	for k, v := range src {
		if cur, ok := dst[k]; !ok || v > cur {
			dst[k] = v
		}
	}
	return dst
}

// Freeze returns the accumulator as the final element.
func (MapMax) Freeze(acc any) any { return acc }

// Compile-time checks that the fast paths stay wired up.
var (
	_ InPlace = Vector{}
	_ InPlace = MapMax{}
)
