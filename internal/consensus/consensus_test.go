package consensus

import (
	"math/rand"
	"sync"
	"testing"
)

// TestAdoptCommitAllInterleavings2 enumerates every interleaving of
// two processes' phase steps (each process: phase1 then phase2) and
// checks the adopt-commit contract: if anyone commits u, everyone
// returns u; all returned values are inputs; unanimous inputs commit.
func TestAdoptCommitAllInterleavings2(t *testing.T) {
	// Orders as sequences over {P1, P2, Q1, Q2} respecting P1<P2, Q1<Q2.
	orders := [][]int{
		{0, 1, 2, 3}, // P1 P2 Q1 Q2
		{0, 2, 1, 3}, // P1 Q1 P2 Q2
		{0, 2, 3, 1}, // P1 Q1 Q2 P2
		{2, 0, 1, 3}, // Q1 P1 P2 Q2
		{2, 0, 3, 1}, // Q1 P1 Q2 P2
		{2, 3, 0, 1}, // Q1 Q2 P1 P2
	}
	for _, inputs := range [][2]int{{0, 1}, {1, 0}, {1, 1}, {0, 0}} {
		for oi, order := range orders {
			ac := NewAdoptCommit(2)
			var uP, uQ int
			var fP, fQ bool
			var outP, outQ Outcome
			var valP, valQ int
			for _, step := range order {
				switch step {
				case 0:
					uP, fP = ac.phase1(0, inputs[0])
				case 1:
					outP, valP = ac.phase2(0, inputs[0], uP, fP)
				case 2:
					uQ, fQ = ac.phase1(1, inputs[1])
				case 3:
					outQ, valQ = ac.phase2(1, inputs[1], uQ, fQ)
				}
			}
			if outP == Commit && valQ != valP {
				t.Errorf("inputs %v order %d: P committed %d but Q returned %d",
					inputs, oi, valP, valQ)
			}
			if outQ == Commit && valP != valQ {
				t.Errorf("inputs %v order %d: Q committed %d but P returned %d",
					inputs, oi, valQ, valP)
			}
			for _, v := range []int{valP, valQ} {
				if v != inputs[0] && v != inputs[1] {
					t.Errorf("inputs %v order %d: returned %d not an input", inputs, oi, v)
				}
			}
			if inputs[0] == inputs[1] {
				if outP != Commit || outQ != Commit || valP != inputs[0] || valQ != inputs[0] {
					t.Errorf("inputs %v order %d: unanimous inputs must both commit, got %v/%d %v/%d",
						inputs, oi, outP, valP, outQ, valQ)
				}
			}
		}
	}
}

// TestAdoptCommitRandomInterleavings3 drives three processes through
// random phase interleavings and checks the same contract.
func TestAdoptCommitRandomInterleavings3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		ac := NewAdoptCommit(3)
		inputs := [3]int{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
		type state struct {
			u     int
			first bool
			out   Outcome
			val   int
			phase int
		}
		var st [3]state
		for !(st[0].phase == 2 && st[1].phase == 2 && st[2].phase == 2) {
			p := rng.Intn(3)
			switch st[p].phase {
			case 0:
				st[p].u, st[p].first = ac.phase1(p, inputs[p])
				st[p].phase = 1
			case 1:
				st[p].out, st[p].val = ac.phase2(p, inputs[p], st[p].u, st[p].first)
				st[p].phase = 2
			default:
				continue
			}
		}
		committed := -1
		for p := 0; p < 3; p++ {
			if st[p].out == Commit {
				committed = st[p].val
			}
		}
		if committed != -1 {
			for p := 0; p < 3; p++ {
				if st[p].val != committed {
					t.Fatalf("trial %d inputs %v: commit %d but P%d returned %d (%v)",
						trial, inputs, committed, p, st[p].val, st[p].out)
				}
			}
		}
		for p := 0; p < 3; p++ {
			if st[p].val != inputs[0] && st[p].val != inputs[1] && st[p].val != inputs[2] {
				t.Fatalf("trial %d: value %d not an input %v", trial, st[p].val, inputs)
			}
		}
	}
}

func TestAdoptCommitConcurrent(t *testing.T) {
	for seed := 0; seed < 30; seed++ {
		const n = 6
		ac := NewAdoptCommit(n)
		outs := make([]Outcome, n)
		vals := make([]int, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				outs[p], vals[p] = ac.Apply(p, (p+seed)%2)
			}(p)
		}
		wg.Wait()
		committed := -1
		for p := 0; p < n; p++ {
			if outs[p] == Commit {
				committed = vals[p]
			}
		}
		if committed != -1 {
			for p := 0; p < n; p++ {
				if vals[p] != committed {
					t.Fatalf("seed %d: commit %d but slot %d holds %d", seed, committed, p, vals[p])
				}
			}
		}
	}
}

func TestAdoptCommitRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAdoptCommit(2).Apply(0, -1)
}

func TestSharedCoinTerminatesAndIsBinary(t *testing.T) {
	const n = 4
	c := NewSharedCoin(n, 0, 99)
	var wg sync.WaitGroup
	outs := make([]int, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			outs[p] = c.Flip(p)
		}(p)
	}
	wg.Wait()
	for p, v := range outs {
		if v != 0 && v != 1 {
			t.Errorf("slot %d: coin returned %d", p, v)
		}
	}
}

func TestSharedCoinSolo(t *testing.T) {
	// A solo process must still terminate (wait-freedom): the walk
	// drifts to a barrier on its own flips.
	c := NewSharedCoin(3, 0, 5)
	if v := c.Flip(0); v != 0 && v != 1 {
		t.Fatalf("solo flip = %d", v)
	}
}

func TestConsensusUnanimous(t *testing.T) {
	for _, v := range []int{0, 1} {
		const n = 5
		c := New(n, 7)
		var wg sync.WaitGroup
		outs := make([]int, n)
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				outs[p] = c.Decide(p, v)
			}(p)
		}
		wg.Wait()
		for p, got := range outs {
			if got != v {
				t.Errorf("input %d: slot %d decided %d (validity violated)", v, p, got)
			}
		}
	}
}

// TestConsensusAgreementAndValidity is the headline test: many seeds,
// mixed inputs, full concurrency — all decisions equal and valid.
func TestConsensusAgreementAndValidity(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		const n = 6
		c := New(n, seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		inputs := make([]int, n)
		ones := 0
		for p := range inputs {
			inputs[p] = rng.Intn(2)
			ones += inputs[p]
		}
		outs := make([]int, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				outs[p] = c.Decide(p, inputs[p])
			}(p)
		}
		wg.Wait()
		for p := 1; p < n; p++ {
			if outs[p] != outs[0] {
				t.Fatalf("seed %d inputs %v: disagreement %v", seed, inputs, outs)
			}
		}
		if ones == 0 && outs[0] != 0 || ones == n && outs[0] != 1 {
			t.Fatalf("seed %d: unanimous inputs %v decided %d", seed, inputs, outs[0])
		}
	}
}

// TestConsensusWithCrashedProcesses: slots that never call Decide must
// not block the others (wait-freedom / randomized termination).
func TestConsensusWithCrashedProcesses(t *testing.T) {
	const n = 6
	c := New(n, 11)
	// Only slots 0..2 participate; 3..5 are crashed from the start.
	outs := make([]int, 3)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			outs[p] = c.Decide(p, p%2)
		}(p)
	}
	wg.Wait()
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("disagreement among survivors: %v", outs)
	}
}

func TestConsensusDecideIsSticky(t *testing.T) {
	c := New(2, 3)
	first := c.Decide(0, 1)
	if again := c.Decide(0, 0); again != first {
		t.Errorf("second Decide returned %d, want cached %d", again, first)
	}
}

func TestConsensusRejectsBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 1).Decide(0, 2)
}

// TestConsensusLateJoiner: a process that starts long after the others
// decided must decide the same value regardless of its own input.
func TestConsensusLateJoiner(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		const n = 4
		c := New(n, seed)
		outs := make([]int, n-1)
		var wg sync.WaitGroup
		for p := 0; p < n-1; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				outs[p] = c.Decide(p, p%2)
			}(p)
		}
		wg.Wait()
		late := c.Decide(n-1, 1-outs[0]) // propose the opposite
		if late != outs[0] {
			t.Fatalf("seed %d: late joiner decided %d, others %d", seed, late, outs[0])
		}
	}
}
