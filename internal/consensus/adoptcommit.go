// Package consensus implements randomized wait-free binary consensus
// from atomic registers — the paper's Section 2 remark made concrete:
// "the asynchronous PRAM model is universal for randomized wait-free
// objects" (citing Aspnes & Herlihy's randomized consensus, reference
// [6], whose shared coin is exactly the shared counter that Section
// 5.1 names as a motivating Property 1 type).
//
// Deterministic consensus from registers is impossible (Section 1);
// the randomized protocol sidesteps the impossibility by alternating
// two wait-free building blocks per round:
//
//   - an adopt-commit object (safety): if any process commits v, every
//     process leaves the round holding v, so disagreement can never be
//     re-introduced once someone decides;
//   - a conciliator (liveness): a shared-coin random walk over the
//     wait-free counter that, with constant probability, hands every
//     process the same value, after which the next adopt-commit
//     commits.
//
// Safety is deterministic and unconditional; only the number of rounds
// is random (constant in expectation).
package consensus

import (
	"fmt"

	"repro/apram/obs"
	"repro/internal/lattice"
	"repro/internal/snapshot"
)

// Outcome is an adopt-commit verdict.
type Outcome int

// Adopt-commit outcomes.
const (
	// Adopt: carry the returned value into the next round.
	Adopt Outcome = iota
	// Commit: the returned value is decided; every other process is
	// guaranteed to leave this object holding it.
	Commit
)

// String renders the outcome.
func (o Outcome) String() string {
	if o == Commit {
		return "commit"
	}
	return "adopt"
}

// acCell is one process's published state in the adopt-commit object.
type acCell struct {
	V1    int  // phase-1 proposal
	Has2  bool // phase 2 reached
	V2    int  // phase-2 claim
	First bool // phase-1 scan was unanimous on V1
}

// AdoptCommit is a wait-free adopt-commit object built on the atomic
// snapshot. Its correctness argument leans directly on the snapshot's
// linearizability (Theorem 33):
//
// All processes whose phase-1 scan was unanimous ("first" processes)
// necessarily saw each other's proposals in linearization order, so
// they all hold one common value u*. A process commits only if it is
// first and its phase-2 scan shows only u*; any process whose phase-2
// publish is linearized before that scan was therefore already
// claiming u*, and any process scanning later sees a first-flagged u*
// claim and adopts it. Either way, every exit carries u* once anyone
// commits.
type AdoptCommit struct {
	snap *snapshot.Snapshot
	vl   lattice.Vector
	tag  []uint64 // per-process publication tags (owned by the process)

	probe   obs.Probe
	emitOps bool
}

// NewAdoptCommit returns an n-process adopt-commit object.
func NewAdoptCommit(n int) *AdoptCommit {
	vl := lattice.Vector{N: n}
	return &AdoptCommit{snap: snapshot.New(n, vl), vl: vl, tag: make([]uint64, n)}
}

// Instrument attaches a probe. Register accounting flows from the
// embedded snapshot (Apply is exactly two snapshot operations);
// phase-2 verdicts surface as obs.EvCommit / obs.EvAdopt. emitOps
// false suppresses the OpACApply completions for nested use inside
// Consensus. Attach before sharing.
func (ac *AdoptCommit) Instrument(p obs.Probe, emitOps bool) {
	ac.probe = p
	ac.emitOps = emitOps && p != nil
	ac.snap.Instrument(p, false)
}

// N returns the number of process slots.
func (ac *AdoptCommit) N() int { return ac.vl.N }

// publish atomically joins p's cell into the object and returns the
// resulting view — publish and read share one linearization point,
// which is what the proof sketch above uses.
func (ac *AdoptCommit) publish(p int, cell acCell) []acCell {
	ac.tag[p]++
	vec := ac.snap.Scan(p, ac.vl.Single(p, ac.tag[p], cell)).(lattice.Vec)
	out := make([]acCell, len(vec))
	for i, c := range vec {
		if c.Tag != 0 {
			out[i] = c.Val.(acCell)
		} else {
			out[i] = acCell{V1: -1}
		}
	}
	return out
}

// phase1 publishes the proposal and reports the value to claim and
// whether the scan was unanimous.
func (ac *AdoptCommit) phase1(p, v int) (u int, first bool) {
	view := ac.publish(p, acCell{V1: v})
	u, first = v, true
	for _, c := range view {
		if c.V1 == -1 {
			continue // not yet published
		}
		if c.V1 != v {
			first = false
			if c.V1 < u {
				u = c.V1 // deterministic pick among seen proposals
			}
		}
	}
	return u, first
}

// phase2 publishes the claim and resolves the outcome.
func (ac *AdoptCommit) phase2(p, v, u int, first bool) (Outcome, int) {
	view := ac.publish(p, acCell{V1: v, Has2: true, V2: u, First: first})
	unanimous := true
	firstClaim := -1
	for _, c := range view {
		if !c.Has2 {
			continue
		}
		if c.V2 != u {
			unanimous = false
		}
		if c.First {
			firstClaim = c.V2 // unique across first processes (see doc)
		}
	}
	if first && unanimous {
		if ac.probe != nil {
			ac.probe.Event(p, obs.EvCommit)
		}
		return Commit, u
	}
	if ac.probe != nil {
		ac.probe.Event(p, obs.EvAdopt)
	}
	if firstClaim != -1 {
		return Adopt, firstClaim
	}
	return Adopt, u
}

// Apply runs the adopt-commit protocol for process p with proposal
// v ≥ 0. It is wait-free: exactly two snapshot operations.
func (ac *AdoptCommit) Apply(p, v int) (Outcome, int) {
	if v < 0 {
		panic(fmt.Sprintf("consensus: proposal %d must be non-negative", v))
	}
	if ac.emitOps {
		obs.Begin(ac.probe, p, obs.OpACApply)
	}
	u, first := ac.phase1(p, v)
	outcome, w := ac.phase2(p, v, u, first)
	if ac.emitOps {
		ac.probe.OpDone(p, obs.OpACApply)
	}
	return outcome, w
}
