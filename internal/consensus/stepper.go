package consensus

import "math/rand"

// Stepper drives one process's Decide through the consensus protocol
// one linearizable shared-memory operation at a time, under external
// (possibly adversarial) control. Every building block the protocol
// uses — the snapshot operations inside adopt-commit, the counter
// operations inside the shared coin — is linearizable, so
// interleaving at whole-operation granularity explores every
// distinguishable behaviour; this is what lets deterministic schedule
// harnesses (the stepper tests, the chaos fuzzer) cover chosen
// schedules and crash points rather than sampled ones.
//
// A Stepper's randomness (its coin-flip choices) comes from its own
// seeded source, so a fixed (seed, schedule) pair replays
// bit-for-bit.
type Stepper struct {
	c    *Consensus
	p    int
	v    int
	r    int
	done bool
	out  int

	phase int // 0 conciliator publish+scan; 1 coin walk; 2 ac.phase1; 3 ac.phase2
	// conciliator intermediates
	conUnanimous bool
	// coin walk intermediates
	coinPendingRead bool
	rng             *rand.Rand
	// adopt-commit intermediates
	acU     int
	acFirst bool
}

// NewStepper returns a stepper for process p proposing v ∈ {0, 1} on
// c, with seed driving the process's local coin-flip randomness.
func NewStepper(c *Consensus, p, v int, seed int64) *Stepper {
	return &Stepper{c: c, p: p, v: v, rng: rand.New(rand.NewSource(seed))}
}

// Done reports whether the process has decided.
func (s *Stepper) Done() bool { return s.done }

// Output returns the decided value. It panics before Done.
func (s *Stepper) Output() int {
	if !s.done {
		panic("consensus: Output before Done")
	}
	return s.out
}

// Step performs exactly one linearizable shared-memory operation of
// the protocol and reports whether the process has decided.
func (s *Stepper) Step() bool {
	if s.done {
		return true
	}
	con := s.c.con[s.r]
	ac := s.c.ac[s.r]
	switch s.phase {
	case 0: // conciliator: one atomic publish+scan
		_, unanimous := con.ac.phase1(s.p, s.v)
		s.conUnanimous = unanimous
		if unanimous {
			s.phase = 2
		} else {
			s.phase = 1
			s.coinPendingRead = false
		}
	case 1: // coin walk: alternate one counter update and one read
		coin := con.coin
		if !s.coinPendingRead {
			if s.rng.Intn(2) == 0 {
				coin.counter.Inc(s.p, 1)
			} else {
				coin.counter.Dec(s.p, 1)
			}
			s.coinPendingRead = true
			return false
		}
		s.coinPendingRead = false
		v := coin.counter.Read(s.p)
		switch {
		case v >= coin.barrier:
			s.v = 1
			s.phase = 2
		case v <= -coin.barrier:
			s.v = 0
			s.phase = 2
		}
	case 2: // adopt-commit phase 1: one snapshot op
		s.acU, s.acFirst = ac.phase1(s.p, s.v)
		s.phase = 3
	case 3: // adopt-commit phase 2: one snapshot op
		outcome, u := ac.phase2(s.p, s.v, s.acU, s.acFirst)
		s.v = u
		if outcome == Commit {
			s.done = true
			s.out = u
			return true
		}
		s.r++
		if s.r >= len(s.c.ac) {
			panic("consensus: stepper exceeded the preallocated rounds; see package doc")
		}
		s.phase = 0
	}
	return s.done
}
