package consensus

import (
	"math/rand"
	"testing"
)

// This file drives the full consensus protocol under DETERMINISTIC
// adversarial schedules at operation granularity. Every building block
// the protocol uses (snapshot scans inside adopt-commit, counter
// operations inside the shared coin) is linearizable, so interleaving
// at whole-operation granularity explores every distinguishable
// behaviour — goroutine tests cover "some" schedules, this harness
// covers chosen ones, including crashes at every point.

// runSchedule drives the steppers under a schedule function until all
// live processes decide or the step budget runs out. crashAt[p] (when
// ≥ 0) crashes process p after that many of its own steps.
func runSchedule(t *testing.T, n int, inputs []int, seed int64,
	pick func(live []int) int, crashAt []int) []int {
	t.Helper()
	c := New(n, seed)
	steppers := make([]*Stepper, n)
	stepsTaken := make([]int, n)
	for p := 0; p < n; p++ {
		steppers[p] = NewStepper(c, p, inputs[p], seed*1000+int64(p))
	}
	budget := 1_000_000
	for {
		var live []int
		for p := 0; p < n; p++ {
			crashed := crashAt != nil && crashAt[p] >= 0 && stepsTaken[p] >= crashAt[p]
			if !steppers[p].Done() && !crashed {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			break
		}
		if budget == 0 {
			t.Fatal("schedule did not terminate within budget")
		}
		budget--
		p := pick(live)
		steppers[p].Step()
		stepsTaken[p]++
	}
	outs := make([]int, n)
	for p := 0; p < n; p++ {
		if steppers[p].Done() {
			outs[p] = steppers[p].Output()
		} else {
			outs[p] = -1 // crashed before deciding
		}
	}
	return outs
}

// checkSafety verifies agreement among deciders and validity.
func checkSafety(t *testing.T, inputs, outs []int, label string) {
	t.Helper()
	decided := -1
	for p, o := range outs {
		if o == -1 {
			continue
		}
		if o != 0 && o != 1 {
			t.Fatalf("%s: process %d decided %d", label, p, o)
		}
		if decided == -1 {
			decided = o
		} else if o != decided {
			t.Fatalf("%s: disagreement: %v (inputs %v)", label, outs, inputs)
		}
	}
	if decided == -1 {
		return
	}
	valid := false
	for _, in := range inputs {
		if in == decided {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("%s: decided %d not among inputs %v", label, decided, inputs)
	}
}

// TestStepperSequentialSolo: a lone process decides its own input.
func TestStepperSequentialSolo(t *testing.T) {
	outs := runSchedule(t, 3, []int{1, 0, 0}, 4,
		func(live []int) int { return live[0] }, []int{-1, 0, 0})
	if outs[0] != 1 {
		t.Fatalf("solo decider got %d, want its input 1", outs[0])
	}
}

// TestStepperRandomSchedules: many random op-granular schedules with
// mixed inputs.
func TestStepperRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed%4)
		inputs := make([]int, n)
		for p := range inputs {
			inputs[p] = rng.Intn(2)
		}
		outs := runSchedule(t, n, inputs, seed,
			func(live []int) int { return live[rng.Intn(len(live))] }, nil)
		checkSafety(t, inputs, outs, "random")
		for p, o := range outs {
			if o == -1 {
				t.Fatalf("seed %d: process %d never decided", seed, p)
			}
		}
	}
}

// TestStepperCrashesEverywhere: crash one process after k of its own
// operations, for every k in a prefix — survivors must still decide
// and agree (with the crashed one if it decided first).
func TestStepperCrashesEverywhere(t *testing.T) {
	for k := 0; k < 12; k++ {
		for victim := 0; victim < 3; victim++ {
			rng := rand.New(rand.NewSource(int64(k*10 + victim)))
			inputs := []int{1, 0, 1}
			crash := []int{-1, -1, -1}
			crash[victim] = k
			outs := runSchedule(t, 3, inputs, int64(k*7+victim),
				func(live []int) int { return live[rng.Intn(len(live))] }, crash)
			checkSafety(t, inputs, outs, "crash")
			for p, o := range outs {
				if p != victim && o == -1 {
					t.Fatalf("k=%d victim=%d: survivor %d never decided", k, victim, p)
				}
			}
		}
	}
}

// TestStepperAdversarialAlternation: pathological schedules — strict
// alternation, one-at-a-time bursts, priority inversion — all must
// preserve safety.
func TestStepperAdversarialAlternation(t *testing.T) {
	schedules := map[string]func(step int) func(live []int) int{
		"alternate": func(step int) func([]int) int {
			i := 0
			return func(live []int) int { i++; return live[i%len(live)] }
		},
		"firstAlways": func(step int) func([]int) int {
			return func(live []int) int { return live[0] }
		},
		"lastAlways": func(step int) func([]int) int {
			return func(live []int) int { return live[len(live)-1] }
		},
		"burst16": func(step int) func([]int) int {
			i, cur := 0, 0
			return func(live []int) int {
				if i%16 == 0 {
					cur = (cur + 1) % len(live)
				}
				i++
				return live[cur%len(live)]
			}
		},
	}
	for name, mk := range schedules {
		inputs := []int{0, 1, 1, 0}
		outs := runSchedule(t, 4, inputs, 5, mk(0), nil)
		checkSafety(t, inputs, outs, name)
		for p, o := range outs {
			if o == -1 {
				t.Fatalf("%s: process %d never decided", name, p)
			}
		}
	}
}

// TestStepperMatchesDecide: the stepper decomposition must agree with
// the monolithic Decide when run solo (same seed, same coin flips).
func TestStepperMatchesDecide(t *testing.T) {
	// Unanimous inputs decide in round 0 without touching the coin, so
	// the comparison is exact.
	c1 := New(2, 9)
	got := c1.Decide(0, 1)
	outs := runSchedule(t, 2, []int{1, 1}, 9,
		func(live []int) int { return live[0] }, nil)
	if outs[0] != got {
		t.Fatalf("stepper %d vs Decide %d", outs[0], got)
	}
}
