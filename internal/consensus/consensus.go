package consensus

import (
	"fmt"

	"repro/apram/obs"
)

// MaxRounds bounds the preallocated per-round objects. The expected
// number of rounds is a small constant (each conciliator succeeds with
// constant probability), so 64 rounds puts the exhaustion probability
// far below hardware failure; exceeding it panics rather than
// violating wait-freedom bounds silently.
const MaxRounds = 64

// Consensus is randomized wait-free binary consensus for n processes
// from atomic registers: Decide returns the same value ∈ {0, 1} to
// every process (agreement, deterministic), that value is some
// process's input (validity, deterministic), and every call terminates
// with probability 1 in a constant expected number of rounds.
type Consensus struct {
	n      int
	ac     []*AdoptCommit
	con    []*conciliator
	local  []int // cached decision per process slot (owned by the slot)
	done   []bool
	rounds []int // rounds used by each slot's Decide (owned by the slot)

	probe obs.Probe
}

// New returns an n-process consensus object seeded for reproducible
// local randomness, preallocating MaxRounds rounds.
func New(n int, seed int64) *Consensus { return NewWithRounds(n, seed, MaxRounds) }

// NewWithRounds preallocates only the given number of rounds. Because
// round objects are built from registers alone, they cannot be
// allocated on demand without extra synchronization, so they are built
// up front; callers that create many consensus objects can trade
// memory for a (still astronomically small at, say, 24 rounds) risk of
// round exhaustion.
func NewWithRounds(n int, seed int64, rounds int) *Consensus {
	if rounds <= 0 || rounds > MaxRounds {
		rounds = MaxRounds
	}
	c := &Consensus{
		n:      n,
		ac:     make([]*AdoptCommit, rounds),
		con:    make([]*conciliator, rounds),
		local:  make([]int, n),
		done:   make([]bool, n),
		rounds: make([]int, n),
	}
	for r := 0; r < rounds; r++ {
		c.ac[r] = NewAdoptCommit(n)
		c.con[r] = newConciliator(n, seed+int64(r)*104729)
	}
	return c
}

// Instrument attaches a probe to the protocol and every round's
// building blocks: register accounting flows up from the adopt-commit
// snapshots and the shared-coin counters, rounds surface as
// obs.EvRound, coin activity as obs.EvCoinStep/obs.EvCoinFlip,
// verdicts as obs.EvCommit/obs.EvAdopt, and each completed Decide as
// one obs.OpDecide. Attach before the object is shared.
func (c *Consensus) Instrument(p obs.Probe) {
	c.probe = p
	for r := range c.ac {
		c.ac[r].Instrument(p, false)
		c.con[r].instrument(p)
	}
}

// N returns the number of process slots.
func (c *Consensus) N() int { return c.n }

// RoundsUsed returns how many rounds slot p's Decide took (0 before it
// decided). Expected to be a small constant; the distribution is
// measured by experiment E12.
func (c *Consensus) RoundsUsed(p int) int { return c.rounds[p] }

// Decide runs the protocol for process p with input v ∈ {0, 1} and
// returns the decision. Calling Decide again on the same slot returns
// the cached decision.
func (c *Consensus) Decide(p, v int) int {
	if v != 0 && v != 1 {
		panic(fmt.Sprintf("consensus: input %d must be 0 or 1", v))
	}
	if c.done[p] {
		return c.local[p]
	}
	if c.probe != nil {
		obs.Begin(c.probe, p, obs.OpDecide)
	}
	for r := 0; r < len(c.ac); r++ {
		// Conciliate first: with constant probability all processes
		// leave with one value, and unanimity is preserved exactly.
		v = c.con[r].apply(p, v)
		// Then adopt-commit: deterministic safety.
		outcome, u := c.ac[r].Apply(p, v)
		v = u
		if c.probe != nil {
			c.probe.Event(p, obs.EvRound)
		}
		if outcome == Commit {
			c.local[p] = v
			c.done[p] = true
			c.rounds[p] = r + 1
			if c.probe != nil {
				c.probe.OpDone(p, obs.OpDecide)
			}
			return v
		}
	}
	panic("consensus: exceeded the preallocated rounds; see package doc")
}
