package consensus

import (
	"math/rand"

	"repro/apram/obs"
	"repro/internal/types"
)

// SharedCoin is the Aspnes–Herlihy shared coin (the paper's reference
// [6]): a random walk on a wait-free shared counter. Each process
// repeatedly increments or decrements by one according to a local coin
// flip and reads the counter; it outputs 1 when the walk has drifted
// past +barrier and 0 past −barrier.
//
// The coin is "weak": with constant probability every process sees the
// same exit side, and in the remaining executions outputs may differ —
// which is harmless, because the consensus protocol's safety never
// depends on the coin. Every Flip terminates with probability 1 and in
// O(n·barrier) expected counter operations.
type SharedCoin struct {
	counter *types.DirectCounter
	barrier int64
	rng     []*rand.Rand // one per process slot, owned by that slot

	probe obs.Probe
}

// NewSharedCoin returns an n-process shared coin. barrier ≤ 0 selects
// the default 2n. The seed makes each slot's local flips reproducible.
func NewSharedCoin(n int, barrier int64, seed int64) *SharedCoin {
	if barrier <= 0 {
		barrier = int64(2 * n)
	}
	c := &SharedCoin{
		counter: types.NewDirectCounter(n),
		barrier: barrier,
		rng:     make([]*rand.Rand, n),
	}
	for p := range c.rng {
		c.rng[p] = rand.New(rand.NewSource(seed + int64(p)*7919))
	}
	return c
}

// Instrument attaches a probe: register accounting flows from the
// walk's wait-free counter, each walk iteration surfaces as
// obs.EvCoinStep and each completed Flip as obs.EvCoinFlip.
func (c *SharedCoin) Instrument(p obs.Probe) {
	c.probe = p
	c.counter.Instrument(p, false)
}

// Flip runs the random walk for process p and returns 0 or 1.
func (c *SharedCoin) Flip(p int) int {
	done := func(out int) int {
		if c.probe != nil {
			c.probe.Event(p, obs.EvCoinFlip)
		}
		return out
	}
	for {
		if c.rng[p].Intn(2) == 0 {
			c.counter.Inc(p, 1)
		} else {
			c.counter.Dec(p, 1)
		}
		v := c.counter.Read(p)
		if c.probe != nil {
			c.probe.Event(p, obs.EvCoinStep)
		}
		switch {
		case v >= c.barrier:
			return done(1)
		case v <= -c.barrier:
			return done(0)
		}
	}
}

// conciliator is one round's agreement-probability booster: it
// preserves unanimity (if every caller brings v, every caller leaves
// with v — required so an already-decided value survives) and
// otherwise falls back to the shared coin.
type conciliator struct {
	ac   *AdoptCommit // reused purely as an atomic publish+scan of inputs
	coin *SharedCoin
}

func newConciliator(n int, seed int64) *conciliator {
	return &conciliator{ac: NewAdoptCommit(n), coin: NewSharedCoin(n, 0, seed)}
}

// instrument attaches a probe to both building blocks (nested mode).
func (con *conciliator) instrument(p obs.Probe) {
	con.ac.Instrument(p, false)
	con.coin.Instrument(p)
}

// apply returns the process's next preference.
func (con *conciliator) apply(p, v int) int {
	// Publish v and look for disagreement, atomically.
	u, unanimous := con.ac.phase1(p, v)
	_ = u
	if unanimous {
		return v
	}
	return con.coin.Flip(p)
}
