package types

import (
	"testing"

	"repro/internal/spec"
)

// stateSamples replays growing prefixes of the spec's sample
// invocations (twice over, so multisets and maps accumulate), yielding
// a spread of reachable states including the initial one.
func stateSamples(s Sampler) []spec.State {
	invs := s.SampleInvocations()
	script := append(append([]spec.Inv(nil), invs...), invs...)
	out := []spec.State{s.Init()}
	st := s.Init()
	for _, inv := range script {
		st, _ = s.Apply(st, inv)
		out = append(out, st)
	}
	return out
}

// TestCheckpointRoundTrip: every Property 1 type's codec must be
// canonical — encode → decode → re-encode is the identity on bytes,
// the decoded state is Equal to the original, and the Keys match
// (spec.MakeCheckpoint's cross-validation).
func TestCheckpointRoundTrip(t *testing.T) {
	for _, s := range Property1Types() {
		ck, ok := spec.AsCheckpointable(s)
		if !ok {
			t.Errorf("%s: Property 1 type without a checkpoint codec", s.Name())
			continue
		}
		t.Run(s.Name(), func(t *testing.T) {
			for i, st := range stateSamples(s) {
				data, err := ck.EncodeState(st)
				if err != nil {
					t.Fatalf("state %d: encode: %v", i, err)
				}
				back, err := ck.DecodeState(data)
				if err != nil {
					t.Fatalf("state %d: decode: %v", i, err)
				}
				if !s.Equal(st, back) {
					t.Fatalf("state %d: decoded state not Equal: %v vs %v", i, st, back)
				}
				if s.Key(st) != s.Key(back) {
					t.Fatalf("state %d: Key drift: %q vs %q", i, s.Key(st), s.Key(back))
				}
				again, err := ck.EncodeState(back)
				if err != nil {
					t.Fatalf("state %d: re-encode: %v", i, err)
				}
				if string(data) != string(again) {
					t.Fatalf("state %d: encoding not canonical: %q vs %q", i, data, again)
				}
			}
		})
	}
}

// TestCheckpointMakeRestore drives the spec-level entry points the
// truncation protocol uses: MakeCheckpoint validates the fold and
// RestoreCheckpoint recovers the identical state.
func TestCheckpointMakeRestore(t *testing.T) {
	for _, s := range Property1Types() {
		t.Run(s.Name(), func(t *testing.T) {
			for i, st := range stateSamples(s) {
				c, err := spec.MakeCheckpoint(s, st)
				if err != nil {
					t.Fatalf("state %d: %v", i, err)
				}
				if c.Key != s.Key(st) {
					t.Fatalf("state %d: checkpoint key %q, state key %q", i, c.Key, s.Key(st))
				}
				back, err := spec.RestoreCheckpoint(s, c)
				if err != nil {
					t.Fatalf("state %d: restore: %v", i, err)
				}
				if !s.Equal(st, back) {
					t.Fatalf("state %d: restored state not Equal", i)
				}
			}
		})
	}
}

// TestCheckpointBatchedDelegation: the batched spec (the serving
// layer's composition wrapper) shares its base spec's state space, so
// its codec must be the base codec, found through spec.Unwrapper —
// and checkpoints of batch-replayed states must validate.
func TestCheckpointBatchedDelegation(t *testing.T) {
	for _, s := range Property1Types() {
		t.Run(s.Name(), func(t *testing.T) {
			b := spec.Batch(s)
			bck, ok := spec.AsCheckpointable(b)
			if !ok {
				t.Fatalf("Batch(%s) lost the checkpoint codec", s.Name())
			}
			sck, _ := spec.AsCheckpointable(s)
			if bck != sck {
				t.Fatalf("Batch(%s) codec differs from the base codec", s.Name())
			}
			// A state reached through batched invocations checkpoints
			// identically to the same history unbatched.
			invs := s.SampleInvocations()
			st, _ := spec.Replay(b, []spec.Inv{spec.BatchInv(invs...)})
			flat, _ := spec.Replay(s, invs)
			cb, err := spec.MakeCheckpoint(b, st)
			if err != nil {
				t.Fatal(err)
			}
			cf, err := spec.MakeCheckpoint(s, flat)
			if err != nil {
				t.Fatal(err)
			}
			if string(cb.Data) != string(cf.Data) || cb.Key != cf.Key {
				t.Fatalf("batched checkpoint differs from flat: %q/%q vs %q/%q",
					cb.Data, cb.Key, cf.Data, cf.Key)
			}
		})
	}
}

// TestCheckpointAbsentForConsensusTypes: the queue and sticky bit are
// deliberately codec-free — they are this repo's graceful-degradation
// witnesses (and the queue cannot be served wait-free anyway).
func TestCheckpointAbsentForConsensusTypes(t *testing.T) {
	for _, s := range []Sampler{Queue{}, StickyBit{}} {
		if _, ok := spec.AsCheckpointable(s); ok {
			t.Errorf("%s: unexpectedly checkpointable", s.Name())
		}
		if _, err := spec.MakeCheckpoint(s, s.Init()); err == nil {
			t.Errorf("%s: MakeCheckpoint should fail without a codec", s.Name())
		}
	}
}
