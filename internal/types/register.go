package types

import (
	"fmt"

	"repro/internal/spec"
)

// Register ops.
const (
	OpWrite   = "write"
	OpReadReg = "readreg"
)

// Write builds a write(v) invocation.
func Write(v string) spec.Inv { return spec.Inv{Op: OpWrite, Arg: v} }

// ReadReg builds a readreg() invocation.
func ReadReg() spec.Inv { return spec.Inv{Op: OpReadReg} }

// Register is the sequential specification of a read/write register —
// the model's own primitive, included both as the oracle for the
// internal/register constructions and as another Property 1 type:
// every write overwrites every earlier write (last write wins), and
// everything overwrites a read. Its presence in the constructible
// class is reassuring rather than surprising: registers are what the
// model is made of.
type Register struct{}

// Name identifies the type.
func (Register) Name() string { return "register" }

// Init returns the empty register (reads return "").
func (Register) Init() spec.State { return "" }

// Apply executes one operation.
func (Register) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	switch inv.Op {
	case OpWrite:
		return inv.Arg.(string), nil
	case OpReadReg:
		return s, s.(string)
	default:
		panic(fmt.Sprintf("register: unknown operation %q", inv.Op))
	}
}

// Equal compares states.
func (Register) Equal(a, b spec.State) bool { return a == b }

// Key encodes the state.
func (Register) Key(s spec.State) string { return s.(string) }

// Commutes: reads commute with reads; identical writes commute
// trivially.
func (Register) Commutes(p, q spec.Inv) bool {
	if p.Op == OpReadReg && q.Op == OpReadReg {
		return true
	}
	return p.Op == OpWrite && q.Op == OpWrite && p.Arg == q.Arg
}

// Overwrites: any write overwrites any operation; everything
// overwrites a read.
func (Register) Overwrites(q, p spec.Inv) bool {
	return q.Op == OpWrite || p.Op == OpReadReg
}

// SampleInvocations returns a representative invocation set.
func (Register) SampleInvocations() []spec.Inv {
	return []spec.Inv{Write("a"), Write("b"), Write("a"), ReadReg()}
}

// SampleStates returns representative states.
func (Register) SampleStates() []spec.State {
	return []spec.State{"", "a", "z"}
}

// Pure declares readreg as having no effect.
func (Register) Pure(inv spec.Inv) bool { return inv.Op == OpReadReg }
