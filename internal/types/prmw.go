package types

import (
	"fmt"

	"repro/apram/obs"
	"repro/internal/lattice"
	"repro/internal/snapshot"
	"repro/internal/spec"
)

// This file reproduces the related-work comparator of Section 2:
// Anderson's *pseudo read-modify-write* (PRMW) instructions. "Let F be
// a set of functions that commute with one another. A pseudo
// read-modify-write instruction is parameterized by a function f from
// F. When applied to a memory location holding a value v, it replaces
// the contents with f(v), but does not return a value." The paper
// notes that Anderson's construction uses bounded counters but "does
// not permit overwriting operations" — and indeed this object has no
// reset: commuting updates plus reads only.
//
// Because F commutes, the multiset of applied functions determines the
// state; each process therefore publishes only the fold of its own
// updates, and a read folds everyone's summaries over an atomic
// snapshot. (Like the paper's own constructions — and unlike
// Anderson's — the snapshot tags here are unbounded.)

// CommutingFamily describes a commuting function family F with
// representable composition: an update is a delta, deltas merge
// associatively and commutatively, and the folded delta applies to the
// initial value. Deltas are immutable values.
type CommutingFamily interface {
	// Name identifies the family.
	Name() string
	// Identity is the delta of "no updates".
	Identity() any
	// Merge composes two deltas; it must be associative and
	// commutative with Identity as unit.
	Merge(a, b any) any
	// Apply applies a folded delta to the object's initial value.
	Apply(delta any) any
}

// AddFamily is F = {x ↦ x+k}: folded delta is the sum.
type AddFamily struct{ Init int64 }

// Name identifies the family.
func (AddFamily) Name() string { return "add" }

// Identity returns the zero delta.
func (AddFamily) Identity() any { return int64(0) }

// Merge sums deltas.
func (AddFamily) Merge(a, b any) any { return a.(int64) + b.(int64) }

// Apply adds the fold to the initial value.
func (f AddFamily) Apply(delta any) any { return f.Init + delta.(int64) }

// MaxFamily is F = {x ↦ max(x,k)}: folded delta is the maximum.
type MaxFamily struct{ Init int64 }

// Name identifies the family.
func (MaxFamily) Name() string { return "max" }

// Identity returns the neutral delta (-inf behaves as Init here).
func (MaxFamily) Identity() any { return int64(-1 << 62) }

// Merge takes the maximum.
func (MaxFamily) Merge(a, b any) any {
	if a.(int64) >= b.(int64) {
		return a
	}
	return b
}

// Apply maxes the fold with the initial value.
func (f MaxFamily) Apply(delta any) any {
	if d := delta.(int64); d > f.Init {
		return d
	}
	return f.Init
}

// XorFamily is F = {x ↦ x⊕k}: folded delta is the xor.
type XorFamily struct{ Init uint64 }

// Name identifies the family.
func (XorFamily) Name() string { return "xor" }

// Identity returns the zero delta.
func (XorFamily) Identity() any { return uint64(0) }

// Merge xors deltas.
func (XorFamily) Merge(a, b any) any { return a.(uint64) ^ b.(uint64) }

// Apply xors the fold into the initial value.
func (f XorFamily) Apply(delta any) any { return f.Init ^ delta.(uint64) }

// PRMW is the wait-free pseudo read-modify-write object: Update(f)
// applies a function from the commuting family without returning a
// value; Read returns the current value. Both are linearizable and
// cost one snapshot operation each.
type PRMW struct {
	fam  CommutingFamily
	snap *snapshot.Snapshot
	vl   lattice.Vector
	tag  []uint64
	mine []any // per-process fold of own deltas (owned by the process)

	probe   obs.Probe
	emitOps bool
}

// NewPRMW returns an n-process PRMW object over fam.
func NewPRMW(n int, fam CommutingFamily) *PRMW {
	vl := lattice.Vector{N: n}
	o := &PRMW{
		fam:  fam,
		snap: snapshot.New(n, vl),
		vl:   vl,
		tag:  make([]uint64, n),
		mine: make([]any, n),
	}
	for p := range o.mine {
		o.mine[p] = fam.Identity()
	}
	return o
}

// N returns the number of process slots.
func (o *PRMW) N() int { return o.vl.N }

// Instrument attaches a probe (updates and reads each cost one
// snapshot operation). Attach before sharing.
func (o *PRMW) Instrument(p obs.Probe, emitOps bool) {
	o.probe = p
	o.emitOps = emitOps && p != nil
	o.snap.Instrument(p, false)
}

// Update applies the delta to the object without returning a value.
func (o *PRMW) Update(p int, delta any) {
	if o.emitOps {
		obs.Begin(o.probe, p, obs.OpPRMWUpdate)
	}
	o.mine[p] = o.fam.Merge(o.mine[p], delta)
	o.tag[p]++
	o.snap.Update(p, o.vl.Single(p, o.tag[p], o.mine[p]))
	if o.emitOps {
		o.probe.OpDone(p, obs.OpPRMWUpdate)
	}
}

// Read returns the current value: the fold of every process's summary
// applied to the initial value.
func (o *PRMW) Read(p int) any {
	if o.emitOps {
		obs.Begin(o.probe, p, obs.OpPRMWRead)
	}
	vec := o.snap.ReadMax(p).(lattice.Vec)
	acc := o.fam.Identity()
	for _, c := range vec {
		if c.Tag != 0 {
			acc = o.fam.Merge(acc, c.Val)
		}
	}
	if o.emitOps {
		o.probe.OpDone(p, obs.OpPRMWRead)
	}
	return o.fam.Apply(acc)
}

// PRMW ops for the derived sequential specification.
const (
	OpPRMWUpdate = "prmw-update"
	OpPRMWRead   = "prmw-read"
)

// PRMWUpdate builds an update(delta) invocation.
func PRMWUpdate(delta any) spec.Inv { return spec.Inv{Op: OpPRMWUpdate, Arg: delta} }

// PRMWRead builds a read() invocation.
func PRMWRead() spec.Inv { return spec.Inv{Op: OpPRMWRead} }

// PRMWSpec derives a sequential specification from a commuting family.
// Updates commute by the family laws and everything overwrites read,
// so any PRMW object satisfies Property 1 by construction — which is
// why the universal construction implements it too (cross-validated in
// the tests).
type PRMWSpec struct {
	Fam CommutingFamily
}

// Name identifies the type.
func (s PRMWSpec) Name() string { return "prmw-" + s.Fam.Name() }

// Init returns the identity fold.
func (s PRMWSpec) Init() spec.State { return s.Fam.Identity() }

// Apply executes one operation; the state is the folded delta.
func (s PRMWSpec) Apply(st spec.State, inv spec.Inv) (spec.State, any) {
	switch inv.Op {
	case OpPRMWUpdate:
		return s.Fam.Merge(st, inv.Arg), nil
	case OpPRMWRead:
		return st, s.Fam.Apply(st)
	default:
		panic(fmt.Sprintf("prmw: unknown operation %q", inv.Op))
	}
}

// Equal compares folded states.
func (s PRMWSpec) Equal(a, b spec.State) bool { return a == b }

// Key encodes the folded state.
func (s PRMWSpec) Key(st spec.State) string { return fmt.Sprint(st) }

// Commutes: updates commute with updates, reads with reads.
func (s PRMWSpec) Commutes(p, q spec.Inv) bool {
	return (p.Op == OpPRMWUpdate && q.Op == OpPRMWUpdate) ||
		(p.Op == OpPRMWRead && q.Op == OpPRMWRead)
}

// Overwrites: everything overwrites read; nothing overwrites an
// update — the very restriction Section 2 records ("it does not permit
// overwriting operations").
func (s PRMWSpec) Overwrites(q, p spec.Inv) bool { return p.Op == OpPRMWRead }

// Pure declares the read as having no effect.
func (s PRMWSpec) Pure(inv spec.Inv) bool { return inv.Op == OpPRMWRead }
