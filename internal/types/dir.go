package types

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
)

// Directory (last-writer-wins map) ops. The paper's introduction names
// "sets, queues, directories, and so on" as the long-lived objects of
// interest; the directory below is the largest member of that list
// that fits Property 1: puts to the same key overwrite one another
// (last writer wins), puts to distinct keys commute, delete is a put
// of a tombstone, and lookups are overwritten by everything.
const (
	OpPut    = "put"
	OpDel    = "del"
	OpGet    = "get"
	OpGetAll = "getall"
)

// KV is a put argument.
type KV struct {
	K, V string
}

// Put builds a put(k, v) invocation.
func Put(k, v string) spec.Inv { return spec.Inv{Op: OpPut, Arg: KV{k, v}} }

// Del builds a del(k) invocation.
func Del(k string) spec.Inv { return spec.Inv{Op: OpDel, Arg: k} }

// Get builds a get(k) invocation; its response is the value or "".
func Get(k string) spec.Inv { return spec.Inv{Op: OpGet, Arg: k} }

// GetAll builds a getall() invocation; its response is the sorted
// "k=v" list.
func GetAll() spec.Inv { return spec.Inv{Op: OpGetAll} }

// dirState is an immutable string map.
type dirState map[string]string

// Directory is a last-writer-wins map satisfying Property 1.
type Directory struct{}

// Name identifies the type.
func (Directory) Name() string { return "directory" }

// Init returns the empty directory.
func (Directory) Init() spec.State { return dirState{} }

// Apply executes one operation.
func (Directory) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	m := s.(dirState)
	switch inv.Op {
	case OpPut:
		kv := inv.Arg.(KV)
		out := cloneDir(m)
		out[kv.K] = kv.V
		return out, nil
	case OpDel:
		k := inv.Arg.(string)
		if _, ok := m[k]; !ok {
			return m, nil
		}
		out := cloneDir(m)
		delete(out, k)
		return out, nil
	case OpGet:
		return m, m[inv.Arg.(string)]
	case OpGetAll:
		out := make([]string, 0, len(m))
		for k, v := range m {
			out = append(out, k+"="+v)
		}
		sort.Strings(out)
		return m, out
	default:
		panic(fmt.Sprintf("directory: unknown operation %q", inv.Op))
	}
}

func cloneDir(m dirState) dirState {
	out := make(dirState, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Equal compares states key-wise.
func (Directory) Equal(a, b spec.State) bool {
	x, y := a.(dirState), b.(dirState)
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// Key encodes the state canonically.
func (Directory) Key(s spec.State) string {
	m := s.(dirState)
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// key returns the key an invocation touches, or "" for getall.
func dirKey(in spec.Inv) string {
	switch in.Op {
	case OpPut:
		return in.Arg.(KV).K
	case OpDel, OpGet:
		return in.Arg.(string)
	default:
		return ""
	}
}

// mutates reports whether the op writes.
func dirMutates(in spec.Inv) bool { return in.Op == OpPut || in.Op == OpDel }

// Commutes: operations on distinct keys commute; reads commute with
// reads; identical mutations commute trivially.
func (Directory) Commutes(p, q spec.Inv) bool {
	if !dirMutates(p) && !dirMutates(q) {
		// get/getall pairs: responses depend only on the (unchanged)
		// state, so they commute only if neither mutates — which holds
		// here — regardless of keys.
		return true
	}
	if p.Op == OpGetAll || q.Op == OpGetAll {
		return false // getall observes every key; no mutation commutes with it
	}
	if dirMutates(p) && dirMutates(q) {
		if dirKey(p) != dirKey(q) {
			return true
		}
		return p == q // identical mutation twice
	}
	// One mutation, one get: they commute when the keys differ.
	return dirKey(p) != dirKey(q)
}

// Overwrites: a mutation of key k overwrites any operation that only
// touches k (put/del/get of k) and any pure read; everything
// overwrites get and getall.
func (Directory) Overwrites(q, p spec.Inv) bool {
	if p.Op == OpGet || p.Op == OpGetAll {
		return true
	}
	if dirMutates(q) && dirMutates(p) && dirKey(q) == dirKey(p) {
		return true
	}
	return false
}

// SampleInvocations returns a representative invocation set.
func (Directory) SampleInvocations() []spec.Inv {
	return []spec.Inv{
		Put("a", "1"), Put("a", "2"), Put("b", "9"),
		Del("a"), Del("c"), Get("a"), Get("b"), GetAll(),
	}
}

// SampleStates returns representative states.
func (Directory) SampleStates() []spec.State {
	return []spec.State{
		dirState{},
		dirState{"a": "1"},
		dirState{"a": "2", "b": "9", "c": "x"},
	}
}

// Pure declares get and getall as having no effect.
func (Directory) Pure(inv spec.Inv) bool { return inv.Op == OpGet || inv.Op == OpGetAll }

// StickyBit ops.
const (
	OpSet     = "set"
	OpReadBit = "readbit"
)

// Set builds a set(v) invocation.
func Set(v int64) spec.Inv { return spec.Inv{Op: OpSet, Arg: v} }

// ReadBit builds a readbit() invocation; response −1 when unset.
func ReadBit() spec.Inv { return spec.Inv{Op: OpReadBit} }

// StickyBit is the second negative witness, and the sharpest one: a
// write-once bit (the first set wins; later sets are ignored) IS a
// consensus object — everyone can decide the winning set's value — so
// Section 1's impossibility says it has no deterministic wait-free
// register implementation. Algebraically: set(0) and set(1) neither
// commute (the surviving value differs by order) nor overwrite each
// other (the first one's effect is permanent), so Property 1 fails.
type StickyBit struct{}

// stickyState: −1 unset, else the stuck value.

// Name identifies the type.
func (StickyBit) Name() string { return "stickybit" }

// Init returns the unset bit.
func (StickyBit) Init() spec.State { return int64(-1) }

// Apply executes one operation.
func (StickyBit) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	v := s.(int64)
	switch inv.Op {
	case OpSet:
		if v == -1 {
			return inv.Arg.(int64), nil
		}
		return v, nil
	case OpReadBit:
		return v, v
	default:
		panic(fmt.Sprintf("stickybit: unknown operation %q", inv.Op))
	}
}

// Equal compares states.
func (StickyBit) Equal(a, b spec.State) bool { return a.(int64) == b.(int64) }

// Key encodes the state.
func (StickyBit) Key(s spec.State) string { return fmt.Sprint(s.(int64)) }

// Commutes: reads with reads; identical sets with themselves.
func (StickyBit) Commutes(p, q spec.Inv) bool {
	if p.Op == OpReadBit && q.Op == OpReadBit {
		return true
	}
	return p.Op == OpSet && q.Op == OpSet && p.Arg == q.Arg
}

// Overwrites: everything overwrites a read; nothing overwrites a set —
// the first set's effect is permanent, which is exactly the problem.
func (StickyBit) Overwrites(q, p spec.Inv) bool { return p.Op == OpReadBit }

// SampleInvocations returns a representative invocation set.
func (StickyBit) SampleInvocations() []spec.Inv {
	return []spec.Inv{Set(0), Set(1), ReadBit()}
}

// SampleStates returns representative states.
func (StickyBit) SampleStates() []spec.State {
	return []spec.State{int64(-1), int64(0), int64(1)}
}
