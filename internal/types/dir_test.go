package types

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/spec"
)

func TestDirectorySequential(t *testing.T) {
	_, rs := spec.Replay(Directory{}, []spec.Inv{
		Put("a", "1"), Put("b", "2"), Get("a"), Put("a", "3"),
		Get("a"), Del("b"), Get("b"), GetAll(),
	})
	if rs[2] != "1" || rs[4] != "3" || rs[6] != "" {
		t.Errorf("gets = %v %v %v", rs[2], rs[4], rs[6])
	}
	all := rs[7].([]string)
	if len(all) != 1 || all[0] != "a=3" {
		t.Errorf("getall = %v", all)
	}
}

func TestDirectoryDeleteAbsentKeyIsNoop(t *testing.T) {
	d := Directory{}
	st := d.Init()
	st2, _ := d.Apply(st, Del("nope"))
	if !d.Equal(st, st2) {
		t.Error("deleting an absent key changed the state")
	}
}

func TestDirectorySameKeyPutsDominateByProcess(t *testing.T) {
	// Two concurrent puts to the same key through the universal
	// construction: the higher process's put dominates and wins.
	s := Directory{}
	e0 := &core.Entry{Proc: 0, Seq: 1, Inv: Put("k", "low"), Prev: make([]*core.Entry, 2)}
	e1 := &core.Entry{Proc: 1, Seq: 1, Inv: Put("k", "high"), Prev: make([]*core.Entry, 2)}
	resp, _, err := core.Respond(s, []*core.Entry{e0, e1}, Get("k"))
	if err != nil {
		t.Fatal(err)
	}
	if resp != "high" {
		t.Fatalf("get = %v, want high (P1's put dominates P0's)", resp)
	}
}

func TestDirectoryConcurrentLinearizable(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		const n = 4
		u := core.New(Directory{}, n)
		var rec history.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*37 + int64(p)))
				invs := Directory{}.SampleInvocations()
				for k := 0; k < 3; k++ {
					inv := invs[rng.Intn(len(invs))]
					rec.Invoke(p, inv.Op, inv.Arg, func() any { return u.Execute(p, inv) })
				}
			}(p)
		}
		wg.Wait()
		res, err := lincheck.Check(Directory{}, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: directory history not linearizable:\n%v", seed, rec.History().Ops)
		}
	}
}

func TestStickyBitSemantics(t *testing.T) {
	_, rs := spec.Replay(StickyBit{}, []spec.Inv{
		ReadBit(), Set(1), Set(0), ReadBit(),
	})
	if rs[0] != int64(-1) {
		t.Errorf("unset read = %v", rs[0])
	}
	if rs[3] != int64(1) {
		t.Errorf("read after set(1);set(0) = %v, want 1 (first set sticks)", rs[3])
	}
}

func TestStickyBitFailsProperty1(t *testing.T) {
	s := StickyBit{}
	ok, w := spec.SatisfiesProperty1(s, s.SampleInvocations())
	if ok {
		t.Fatal("sticky bit unexpectedly satisfies Property 1")
	}
	// The witness must be the conflicting sets — the consensus core.
	if w[0].Op != OpSet || w[1].Op != OpSet || w[0].Arg == w[1].Arg {
		t.Errorf("witness = %v/%v, want conflicting sets", w[0], w[1])
	}
	// The declared relations must still be self-consistent.
	for _, v := range spec.CheckAlgebra(s, s.SampleStates(), s.SampleInvocations()) {
		if v.Kind != "property1" {
			t.Errorf("sticky bit declaration inconsistent: %s", v)
		}
	}
}

func TestStickyBitRejectedByConstruction(t *testing.T) {
	s := StickyBit{}
	if _, err := core.NewChecked(s, 2, s.SampleStates(), s.SampleInvocations()); err == nil {
		t.Fatal("sticky bit accepted by NewChecked — it solves consensus!")
	}
}
