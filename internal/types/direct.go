package types

import (
	"repro/apram/obs"
	"repro/internal/lattice"
	"repro/internal/snapshot"
)

// This file implements the type-specific optimization the paper
// gestures at in the closing remark of Section 5.4: "For any
// particular data type, it should be possible to apply type-specific
// optimizations to discard most of the precedence graph." For the
// counter and the logical clock the entire precedence graph collapses
// into O(n) per-process summaries published through the Section 6
// atomic snapshot — no entries, no linearization graphs, no replay.
// Experiment E11 measures the resulting constant-factor win over the
// generic construction.

// epoch identifies a reset generation: a Lamport pair ordered by
// (Count, Proc). Concurrent resets get the same Count and are ordered
// by process index — exactly the dominance tie-break of Definition 14.
type epoch struct {
	Count uint64
	Proc  int
}

// less orders epochs.
func (e epoch) less(o epoch) bool {
	if e.Count != o.Count {
		return e.Count < o.Count
	}
	return e.Proc < o.Proc
}

// counterCell is one process's published summary: the latest reset it
// knows (epoch and base value) and its own inc/dec contributions since
// that reset.
type counterCell struct {
	Epoch epoch
	Base  int64
	Inc   int64
	Dec   int64
}

// DirectCounter is a wait-free linearizable counter with inc, dec,
// reset and read, built directly on the atomic snapshot: each process
// publishes a counterCell; a read returns the base of the newest epoch
// plus the contributions attached to it. Contributions attached to an
// older epoch are linearized before the reset that started the newer
// one — the same story the universal construction's dominance edges
// tell, at a fraction of the cost.
//
// As everywhere, each process index is driven by at most one goroutine
// at a time.
type DirectCounter struct {
	snap *snapshot.Snapshot
	vl   lattice.Vector
	tag  []uint64      // per-process publication tags
	mine []counterCell // per-process local copy of own cell

	probe   obs.Probe // nil when uninstrumented
	emitOps bool      // report operation completions (false when nested)
}

// NewDirectCounter returns an n-process direct counter.
func NewDirectCounter(n int) *DirectCounter {
	vl := lattice.Vector{N: n}
	return &DirectCounter{
		snap: snapshot.New(n, vl),
		vl:   vl,
		tag:  make([]uint64, n),
		mine: make([]counterCell, n),
	}
}

// Instrument attaches a probe. Register accounting flows from the
// embedded snapshot (Inc/Dec/Reset are two snapshot operations each,
// Read is one); the counter adds operation completions and
// obs.EvEpochRestart events. emitOps false suppresses the completions
// for nested use (the shared coin's counter). Attach before sharing.
func (c *DirectCounter) Instrument(p obs.Probe, emitOps bool) {
	c.probe = p
	c.emitOps = emitOps && p != nil
	c.snap.Instrument(p, false)
}

// N returns the number of process slots.
func (c *DirectCounter) N() int { return c.vl.N }

// collect scans the array and returns the cells plus the newest epoch
// observed.
func (c *DirectCounter) collect(p int) ([]counterCell, epoch) {
	vec := c.snap.ReadMax(p).(lattice.Vec)
	cells := make([]counterCell, 0, len(vec))
	var top epoch // zero value: Count 0, Proc 0 — the initial epoch
	for _, cl := range vec {
		if cl.Tag == 0 {
			continue
		}
		cell := cl.Val.(counterCell)
		cells = append(cells, cell)
		if top.less(cell.Epoch) {
			top = cell.Epoch
		}
	}
	return cells, top
}

// publish stores p's cell.
func (c *DirectCounter) publish(p int, cell counterCell) {
	c.mine[p] = cell
	c.tag[p]++
	c.snap.Update(p, c.vl.Single(p, c.tag[p], cell))
}

// adjust adds delta to p's contribution under the newest epoch.
func (c *DirectCounter) adjust(p int, inc, dec int64) {
	if c.emitOps {
		obs.Begin(c.probe, p, obs.OpCounterAdd)
	}
	_, top := c.collect(p)
	cell := c.mine[p]
	if cell.Epoch != top {
		// A newer reset happened: our old contributions are
		// overwritten; restart from the new epoch. We may not know the
		// new base, but we do not need it — only the resetter's cell
		// carries it.
		cell = counterCell{Epoch: top}
		if c.probe != nil {
			c.probe.Event(p, obs.EvEpochRestart)
		}
	}
	cell.Inc += inc
	cell.Dec += dec
	c.publish(p, cell)
	if c.emitOps {
		c.probe.OpDone(p, obs.OpCounterAdd)
	}
}

// Inc adds amount to the counter.
func (c *DirectCounter) Inc(p int, amount int64) { c.adjust(p, amount, 0) }

// Dec subtracts amount from the counter.
func (c *DirectCounter) Dec(p int, amount int64) { c.adjust(p, 0, amount) }

// Reset sets the counter to value, overwriting all earlier operations
// (the paper's reset semantics: reset overwrites everything).
func (c *DirectCounter) Reset(p int, value int64) {
	if c.emitOps {
		obs.Begin(c.probe, p, obs.OpCounterReset)
	}
	_, top := c.collect(p)
	cell := counterCell{
		Epoch: epoch{Count: top.Count + 1, Proc: p},
		Base:  value,
	}
	c.publish(p, cell)
	if c.emitOps {
		c.probe.OpDone(p, obs.OpCounterReset)
	}
}

// Read returns the current counter value.
func (c *DirectCounter) Read(p int) int64 {
	if c.emitOps {
		obs.Begin(c.probe, p, obs.OpCounterRead)
	}
	cells, top := c.collect(p)
	var val int64
	for _, cell := range cells {
		if cell.Epoch != top {
			continue // overwritten by a newer reset
		}
		val += cell.Base + cell.Inc - cell.Dec
	}
	if c.emitOps {
		c.probe.OpDone(p, obs.OpCounterRead)
	}
	return val
}

// Base of the initial epoch is zero and no cell carries it explicitly;
// Read works because the zero-value epoch has Base 0 contributions
// only. A resetter's cell is the unique cell whose Base is non-zero
// for its epoch — every other cell attached to that epoch has Base 0.

// DirectClock is a wait-free linearizable vector logical clock built
// directly on the atomic snapshot over the MapMax lattice: Merge joins
// a remote timestamp, Read returns the join of everything merged so
// far. One snapshot operation per clock operation.
type DirectClock struct {
	snap *snapshot.Snapshot

	probe   obs.Probe
	emitOps bool
}

// NewDirectClock returns an n-process direct logical clock.
func NewDirectClock(n int) *DirectClock {
	return &DirectClock{snap: snapshot.New(n, lattice.MapMax{})}
}

// Instrument attaches a probe (one snapshot operation per clock
// operation; Tick reports one Read and one Merge). Attach before
// sharing.
func (c *DirectClock) Instrument(p obs.Probe, emitOps bool) {
	c.probe = p
	c.emitOps = emitOps && p != nil
	c.snap.Instrument(p, false)
}

// Merge joins ts into the clock.
func (c *DirectClock) Merge(p int, ts lattice.IntMap) {
	if c.emitOps {
		obs.Begin(c.probe, p, obs.OpClockMerge)
	}
	c.snap.Update(p, ts)
	if c.emitOps {
		c.probe.OpDone(p, obs.OpClockMerge)
	}
}

// Read returns the current vector timestamp.
func (c *DirectClock) Read(p int) lattice.IntMap {
	if c.emitOps {
		obs.Begin(c.probe, p, obs.OpClockRead)
	}
	out := c.snap.ReadMax(p).(lattice.IntMap)
	if c.emitOps {
		c.probe.OpDone(p, obs.OpClockRead)
	}
	return out
}

// Tick advances the named component by one past the largest value this
// process has seen for it, and returns the new timestamp. It is the
// Lamport "local event" rule expressed with the clock's wait-free
// primitives: not atomic as a whole (two concurrent Ticks of the same
// component may coincide), which is the inherent price of register-only
// implementations — a unique-ticket Tick would solve consensus.
func (c *DirectClock) Tick(p int, component string) lattice.IntMap {
	cur := c.Read(p)
	next := lattice.IntMap{component: cur[component] + 1}
	c.Merge(p, next)
	return lattice.MapMax{}.Join(cur, next).(lattice.IntMap)
}
