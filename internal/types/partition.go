// Partition contracts for the keyed Property-1 types: each spec below
// implements spec.Partitionable so the sharded universal construction
// (apram/shard) can route its operations across independent anchor
// arrays. The contract has two halves — PartitionKey names the single
// key an operation touches (or declares it cross-partition), and
// MergeResponses recombines a cross-partition operation's per-shard
// responses. For the set-shaped reads (members, getall) the merge is
// the semilattice join the state already lives in: set union over
// disjoint key ranges, which is also a sorted-list merge of the
// per-shard responses. For vsum it is the sum — a commutative monoid
// fold, the aggregate analogue of the join.
//
// The scalar types (Counter, MaxReg, Register, Clock) get no contract
// on purpose: they have a single logical key, so sharding them buys
// nothing — they exercise spec.CheckPartitionable's singleton
// degradation instead.
package types

import (
	"sort"

	"repro/internal/spec"
)

// PartitionKey implements spec.Partitionable for the counter-vector.
func (KCounter) PartitionKey(in spec.Inv) (string, bool) {
	switch in.Op {
	case OpVInc, OpVRead:
		return kcKey(in), true
	default:
		return "", false
	}
}

// MergeResponses implements spec.Partitionable for the counter-vector:
// the global sum is the sum of the per-partition sums.
func (KCounter) MergeResponses(in spec.Inv, parts []any) any {
	if in.Op != OpVSum {
		return nil
	}
	var sum int64
	for _, p := range parts {
		sum += p.(int64)
	}
	return sum
}

// PartitionKey implements spec.Partitionable for the grow-only set:
// an element is its own key.
func (GSet) PartitionKey(in spec.Inv) (string, bool) {
	if in.Op == OpAdd {
		return in.Arg.(string), true
	}
	return "", false
}

// MergeResponses implements spec.Partitionable for the grow-only set:
// the global membership is the union (semilattice join) of the
// per-partition memberships, re-sorted.
func (GSet) MergeResponses(in spec.Inv, parts []any) any {
	if in.Op != OpMembers {
		return nil
	}
	return mergeSorted(parts)
}

// PartitionKey implements spec.Partitionable for the directory.
func (Directory) PartitionKey(in spec.Inv) (string, bool) {
	if in.Op == OpGetAll {
		return "", false
	}
	return dirKey(in), true
}

// MergeResponses implements spec.Partitionable for the directory: the
// global listing is the union of the per-partition listings — the
// partitions hold disjoint key ranges, so the join is a plain merge.
func (Directory) MergeResponses(in spec.Inv, parts []any) any {
	if in.Op != OpGetAll {
		return nil
	}
	return mergeSorted(parts)
}

// mergeSorted joins per-partition sorted string lists into one sorted
// list. Partitions hold disjoint keys, so this is exactly the
// lattice.SetUnion join of the responses, rendered in the sorted-list
// form the unpartitioned spec returns.
func mergeSorted(parts []any) []string {
	out := []string{}
	for _, p := range parts {
		out = append(out, p.([]string)...)
	}
	sort.Strings(out)
	return out
}
