package types

import "sync"

// LockCounter is the conventional mutex-protected counter — the
// baseline experiment E8 stalls to demonstrate why the paper insists
// on wait-freedom. It is intentionally the simplest possible correct
// shared counter.
type LockCounter struct {
	mu sync.Mutex
	v  int64
}

// NewLockCounter returns a zeroed lock-based counter.
func NewLockCounter() *LockCounter { return &LockCounter{} }

// Inc adds amount under the lock.
func (c *LockCounter) Inc(amount int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v += amount
}

// Dec subtracts amount under the lock.
func (c *LockCounter) Dec(amount int64) { c.Inc(-amount) }

// Reset sets the value under the lock.
func (c *LockCounter) Reset(value int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v = value
}

// Read returns the value under the lock.
func (c *LockCounter) Read() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// DoLocked runs f while holding the counter's lock — the failure
// injection hook: a blocking f models a process stalled inside its
// critical section.
func (c *LockCounter) DoLocked(f func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f()
}
