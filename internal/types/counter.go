// Package types provides the concrete data types the paper's Section
// 5.1 uses to illustrate Property 1 — the counter with inc/dec/reset/
// read, logical clocks, set abstractions, and a max-register — as
// sequential specifications consumable by the universal construction
// (internal/core), plus a FIFO queue that deliberately fails Property 1
// to witness the boundary of the characterization.
//
// The package also contains optimized, type-specific wait-free native
// implementations (DirectCounter, DirectClock) exploiting the closing
// remark of Section 5.4: "For any particular data type, it should be
// possible to apply type-specific optimizations to discard most of the
// precedence graph."
package types

import (
	"fmt"

	"repro/internal/spec"
)

// Counter ops. Every argument is an int64.
const (
	OpInc   = "inc"
	OpDec   = "dec"
	OpReset = "reset"
	OpRead  = "read"
)

// Inc returns an inc(amount) invocation.
func Inc(amount int64) spec.Inv { return spec.Inv{Op: OpInc, Arg: amount} }

// Dec returns a dec(amount) invocation.
func Dec(amount int64) spec.Inv { return spec.Inv{Op: OpDec, Arg: amount} }

// Reset returns a reset(amount) invocation.
func Reset(amount int64) spec.Inv { return spec.Inv{Op: OpReset, Arg: amount} }

// Read returns a read() invocation.
func Read() spec.Inv { return spec.Inv{Op: OpRead} }

// Counter is the paper's worked example of a Property 1 type
// (Section 5.1): inc and dec commute, every operation overwrites read,
// and reset overwrites every operation. Its state is the current
// int64 value; read returns it, the other operations return nil.
type Counter struct{}

// Name identifies the type.
func (Counter) Name() string { return "counter" }

// Init returns the zero counter.
func (Counter) Init() spec.State { return int64(0) }

// Apply executes one operation.
func (Counter) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	v := s.(int64)
	switch inv.Op {
	case OpInc:
		return v + inv.Arg.(int64), nil
	case OpDec:
		return v - inv.Arg.(int64), nil
	case OpReset:
		return inv.Arg.(int64), nil
	case OpRead:
		return v, v
	default:
		panic(fmt.Sprintf("counter: unknown operation %q", inv.Op))
	}
}

// Equal compares states.
func (Counter) Equal(a, b spec.State) bool { return a.(int64) == b.(int64) }

// Key encodes the state canonically.
func (Counter) Key(s spec.State) string { return fmt.Sprint(s.(int64)) }

// Commutes implements Definition 10 for the counter:
// inc/dec commute with inc/dec; read commutes with read; reset
// commutes with nothing except through overwriting.
func (Counter) Commutes(p, q spec.Inv) bool {
	mut := func(op string) bool { return op == OpInc || op == OpDec }
	switch {
	case mut(p.Op) && mut(q.Op):
		return true
	case p.Op == OpRead && q.Op == OpRead:
		return true
	default:
		return false
	}
}

// Overwrites implements Definition 11 for the counter: q overwrites p
// if q is a reset (reset obliterates all prior state), or p is a read
// (reads have no effect, so anything after them hides them).
func (Counter) Overwrites(q, p spec.Inv) bool {
	return q.Op == OpReset || p.Op == OpRead
}

// SampleInvocations returns a representative invocation set for
// algebra checking and benchmarks.
func (Counter) SampleInvocations() []spec.Inv {
	return []spec.Inv{
		Inc(1), Inc(5), Dec(1), Dec(3), Reset(0), Reset(42), Read(),
	}
}

// SampleStates returns representative states for algebra checking.
func (Counter) SampleStates() []spec.State {
	return []spec.State{int64(0), int64(1), int64(-7), int64(1000)}
}

// Pure declares read as having no effect, enabling the universal
// construction's unpublished-read optimization.
func (Counter) Pure(inv spec.Inv) bool { return inv.Op == OpRead }
