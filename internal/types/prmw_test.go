package types

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/spec"
)

func families() []CommutingFamily {
	return []CommutingFamily{AddFamily{Init: 10}, MaxFamily{Init: 0}, XorFamily{Init: 0}}
}

// TestFamilyLaws property-checks the commutative-monoid laws every
// family must satisfy.
func TestFamilyLaws(t *testing.T) {
	gens := map[string]func(r *rand.Rand) any{
		"add": func(r *rand.Rand) any { return int64(r.Intn(100) - 50) },
		"max": func(r *rand.Rand) any { return int64(r.Intn(1000)) },
		"xor": func(r *rand.Rand) any { return uint64(r.Intn(1 << 16)) },
	}
	cfg := &quick.Config{MaxCount: 200}
	for _, f := range families() {
		f := f
		gen := gens[f.Name()]
		t.Run(f.Name(), func(t *testing.T) {
			if err := quick.Check(func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a, b, c := gen(r), gen(r), gen(r)
				if f.Merge(a, b) != f.Merge(b, a) {
					return false
				}
				if f.Merge(f.Merge(a, b), c) != f.Merge(a, f.Merge(b, c)) {
					return false
				}
				return f.Merge(f.Identity(), a) == a
			}, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestPRMWSequential(t *testing.T) {
	o := NewPRMW(2, AddFamily{Init: 10})
	if got := o.Read(0); got != int64(10) {
		t.Fatalf("fresh Read = %v", got)
	}
	o.Update(0, int64(5))
	o.Update(1, int64(-2))
	if got := o.Read(1); got != int64(13) {
		t.Fatalf("Read = %v, want 13", got)
	}
}

func TestPRMWConcurrentTotals(t *testing.T) {
	const n, per = 6, 50
	o := NewPRMW(n, AddFamily{})
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				o.Update(p, int64(1))
			}
		}(p)
	}
	wg.Wait()
	if got := o.Read(0); got != int64(n*per) {
		t.Fatalf("Read = %v, want %d", got, n*per)
	}
}

// TestPRMWSpecAlgebra: the derived spec passes the executable algebra
// checks and Property 1 for every family.
func TestPRMWSpecAlgebra(t *testing.T) {
	samples := map[string][]spec.Inv{
		"add": {PRMWUpdate(int64(1)), PRMWUpdate(int64(-3)), PRMWRead()},
		"max": {PRMWUpdate(int64(4)), PRMWUpdate(int64(9)), PRMWRead()},
		"xor": {PRMWUpdate(uint64(5)), PRMWUpdate(uint64(12)), PRMWRead()},
	}
	for _, f := range families() {
		s := PRMWSpec{Fam: f}
		invs := samples[f.Name()]
		states := []spec.State{s.Init()}
		for _, inv := range invs[:2] {
			st, _ := s.Apply(states[len(states)-1], inv)
			states = append(states, st)
		}
		if vs := spec.CheckAlgebra(s, states, invs); len(vs) > 0 {
			t.Errorf("%s: %s", s.Name(), vs[0])
		}
		if ok, w := spec.SatisfiesProperty1(s, invs); !ok {
			t.Errorf("%s: Property 1 fails on %v/%v", s.Name(), w[0], w[1])
		}
	}
}

// TestPRMWLinearizable: concurrent histories of the direct PRMW object
// check out against the derived sequential spec.
func TestPRMWLinearizable(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		const n = 4
		fam := AddFamily{Init: 0}
		o := NewPRMW(n, fam)
		s := PRMWSpec{Fam: fam}
		var rec history.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*31 + int64(p)))
				for k := 0; k < 3; k++ {
					if rng.Intn(2) == 0 {
						d := int64(rng.Intn(9) - 4)
						rec.Invoke(p, OpPRMWUpdate, d, func() any { o.Update(p, d); return nil })
					} else {
						rec.Invoke(p, OpPRMWRead, nil, func() any { return o.Read(p) })
					}
				}
			}(p)
		}
		wg.Wait()
		res, err := lincheck.Check(s, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: PRMW history not linearizable:\n%v", seed, rec.History().Ops)
		}
	}
}

// TestPRMWCrossValidation: the direct PRMW object and the universal
// construction over PRMWSpec compute the same results for the same
// sequential script.
func TestPRMWCrossValidation(t *testing.T) {
	fam := MaxFamily{Init: 3}
	direct := NewPRMW(2, fam)
	universal := core.New(PRMWSpec{Fam: fam}, 2)
	script := []struct {
		p   int
		inv spec.Inv
	}{
		{0, PRMWUpdate(int64(7))},
		{1, PRMWRead()},
		{1, PRMWUpdate(int64(2))},
		{0, PRMWRead()},
		{1, PRMWUpdate(int64(50))},
		{0, PRMWRead()},
	}
	for i, step := range script {
		var dGot any
		if step.inv.Op == OpPRMWUpdate {
			direct.Update(step.p, step.inv.Arg)
		} else {
			dGot = direct.Read(step.p)
		}
		uGot := universal.Execute(step.p, step.inv)
		if step.inv.Op == OpPRMWRead && dGot != uGot {
			t.Fatalf("step %d: direct %v != universal %v", i, dGot, uGot)
		}
	}
}
