package types

import (
	"fmt"
	"sort"

	"repro/internal/lattice"
	"repro/internal/spec"
)

// Logical clock ops.
const (
	OpMerge     = "merge"     // merge a remote vector timestamp
	OpReadClock = "readclock" // read the current vector timestamp
)

// Merge returns a merge(timestamp) invocation; the argument is a
// lattice.IntMap vector timestamp.
func Merge(ts lattice.IntMap) spec.Inv { return spec.Inv{Op: OpMerge, Arg: ts} }

// ReadClock returns a readclock() invocation.
func ReadClock() spec.Inv { return spec.Inv{Op: OpReadClock} }

// Clock is a logical clock in the sense of Lamport's "Time, Clocks,
// and the Ordering of Events" (the paper's reference [33], named in
// Section 1 as implementable by this construction): its state is a
// vector timestamp, merge joins in a remote timestamp (key-wise max),
// and readclock returns the current vector. Merges commute because
// key-wise max is a semilattice join; every operation overwrites
// readclock.
type Clock struct{}

// Name identifies the type.
func (Clock) Name() string { return "logical-clock" }

// Init returns the zero clock.
func (Clock) Init() spec.State { return lattice.IntMap(nil) }

// Apply executes one operation.
func (Clock) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	v := s.(lattice.IntMap)
	switch inv.Op {
	case OpMerge:
		return lattice.MapMax{}.Join(v, inv.Arg.(lattice.IntMap)), nil
	case OpReadClock:
		return v, copyMap(v)
	default:
		panic(fmt.Sprintf("clock: unknown operation %q", inv.Op))
	}
}

// Equal compares states key-wise.
func (Clock) Equal(a, b spec.State) bool {
	l := lattice.MapMax{}
	return l.Leq(a, b) && l.Leq(b, a)
}

// Key encodes the state canonically (sorted keys).
func (Clock) Key(s spec.State) string {
	m := s.(lattice.IntMap)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, m[k])
	}
	return out
}

// Commutes: merges commute with merges, reads with reads.
func (Clock) Commutes(p, q spec.Inv) bool {
	return (p.Op == OpMerge && q.Op == OpMerge) ||
		(p.Op == OpReadClock && q.Op == OpReadClock)
}

// Overwrites: everything overwrites readclock.
func (Clock) Overwrites(q, p spec.Inv) bool { return p.Op == OpReadClock }

// SampleInvocations returns a representative invocation set.
func (Clock) SampleInvocations() []spec.Inv {
	return []spec.Inv{
		Merge(lattice.IntMap{"a": 1}),
		Merge(lattice.IntMap{"a": 3, "b": 2}),
		Merge(lattice.IntMap{"c": 9}),
		ReadClock(),
	}
}

// SampleStates returns representative states.
func (Clock) SampleStates() []spec.State {
	return []spec.State{
		lattice.IntMap(nil),
		lattice.IntMap{"a": 2},
		lattice.IntMap{"a": 1, "b": 5, "c": 2},
	}
}

func copyMap(m lattice.IntMap) lattice.IntMap {
	out := make(lattice.IntMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Pure declares readclock as having no effect.
func (Clock) Pure(inv spec.Inv) bool { return inv.Op == OpReadClock }
