package types

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/history"
	"repro/internal/lattice"
	"repro/internal/lincheck"
)

func TestDirectCounterSequential(t *testing.T) {
	c := NewDirectCounter(2)
	if got := c.Read(0); got != 0 {
		t.Fatalf("fresh Read = %d", got)
	}
	c.Inc(0, 5)
	c.Dec(1, 2)
	if got := c.Read(0); got != 3 {
		t.Fatalf("Read = %d, want 3", got)
	}
	c.Reset(1, 100)
	if got := c.Read(0); got != 100 {
		t.Fatalf("Read after reset = %d, want 100", got)
	}
	c.Inc(0, 1)
	if got := c.Read(1); got != 101 {
		t.Fatalf("Read = %d, want 101", got)
	}
}

func TestDirectCounterResetDropsStaleContributions(t *testing.T) {
	c := NewDirectCounter(3)
	c.Inc(0, 7)
	c.Inc(1, 7)
	c.Reset(2, 0)
	if got := c.Read(0); got != 0 {
		t.Fatalf("Read = %d, want 0 (reset overwrites earlier incs)", got)
	}
	// New contributions attach to the new epoch.
	c.Inc(1, 3)
	if got := c.Read(2); got != 3 {
		t.Fatalf("Read = %d, want 3", got)
	}
}

func TestDirectCounterConcurrentTotals(t *testing.T) {
	const n, per = 8, 100
	c := NewDirectCounter(n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if p%2 == 0 {
					c.Inc(p, 2)
				} else {
					c.Dec(p, 1)
				}
			}
		}(p)
	}
	wg.Wait()
	want := int64(n/2*per*2 - n/2*per)
	if got := c.Read(0); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

// TestDirectCounterLinearizable is the strong oracle: record concurrent
// histories with resets and check them against the sequential Counter
// spec.
func TestDirectCounterLinearizable(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		const n, per = 4, 3
		c := NewDirectCounter(n)
		var rec history.Recorder
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*100 + int64(p)))
				for k := 0; k < per; k++ {
					switch rng.Intn(5) {
					case 0:
						amt := int64(rng.Intn(5))
						rec.Invoke(p, OpInc, amt, func() any { c.Inc(p, amt); return nil })
					case 1:
						amt := int64(rng.Intn(5))
						rec.Invoke(p, OpDec, amt, func() any { c.Dec(p, amt); return nil })
					case 2:
						amt := int64(rng.Intn(50))
						rec.Invoke(p, OpReset, amt, func() any { c.Reset(p, amt); return nil })
					default:
						rec.Invoke(p, OpRead, nil, func() any { return c.Read(p) })
					}
				}
			}(p)
		}
		wg.Wait()
		res, err := lincheck.Check(Counter{}, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: direct counter produced a non-linearizable history:\n%v",
				seed, rec.History().Ops)
		}
	}
}

func TestDirectCounterStalledPeerDoesNotBlock(t *testing.T) {
	// A peer that never takes steps is irrelevant to wait-freedom:
	// operations by the others complete regardless.
	c := NewDirectCounter(3)
	c.Inc(1, 4)
	c.Inc(2, 6)
	if got := c.Read(1); got != 10 {
		t.Fatalf("Read = %d, want 10", got)
	}
}

func TestDirectClockBasics(t *testing.T) {
	c := NewDirectClock(2)
	if got := c.Read(0); len(got) != 0 {
		t.Fatalf("fresh Read = %v", got)
	}
	c.Merge(0, lattice.IntMap{"a": 3})
	c.Merge(1, lattice.IntMap{"a": 1, "b": 2})
	got := c.Read(0)
	if got["a"] != 3 || got["b"] != 2 {
		t.Fatalf("Read = %v", got)
	}
}

func TestDirectClockTick(t *testing.T) {
	c := NewDirectClock(2)
	ts := c.Tick(0, "x")
	if ts["x"] != 1 {
		t.Fatalf("Tick = %v", ts)
	}
	ts = c.Tick(0, "x")
	if ts["x"] != 2 {
		t.Fatalf("second Tick = %v", ts)
	}
}

func TestDirectClockMonotoneUnderConcurrency(t *testing.T) {
	const n = 4
	c := NewDirectClock(n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prev := lattice.IntMap(nil)
			mm := lattice.MapMax{}
			for k := 0; k < 50; k++ {
				c.Tick(p, "shared")
				cur := c.Read(p)
				if !mm.Leq(prev, cur) {
					t.Errorf("p=%d: clock went backwards: %v then %v", p, prev, cur)
					return
				}
				prev = cur
			}
		}(p)
	}
	wg.Wait()
	// Each process ticked 50 times; the final component is at least 50
	// (concurrent ticks may coincide, so ≤ 200).
	final := c.Read(0)["shared"]
	if final < 50 || final > 200 {
		t.Errorf("final clock = %d, want within [50,200]", final)
	}
}
