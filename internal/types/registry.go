package types

import "repro/internal/spec"

// Sampler is a sequential specification bundled with representative
// states and invocations for property-based algebra checking.
type Sampler interface {
	spec.Spec
	// SampleInvocations returns a representative set of invocations.
	SampleInvocations() []spec.Inv
	// SampleStates returns a representative set of reachable states.
	SampleStates() []spec.State
}

// Property1Types returns every type in this package that satisfies
// Property 1 and is therefore constructible by the universal
// construction.
func Property1Types() []Sampler {
	return []Sampler{Counter{}, Clock{}, GSet{}, MaxReg{}, Register{}, Directory{}, KCounter{}}
}

// AllTypes returns every type in this package, including the two
// deliberate Property 1 failures: the queue and the sticky bit (a
// consensus object).
func AllTypes() []Sampler {
	return append(Property1Types(), Queue{}, StickyBit{})
}
