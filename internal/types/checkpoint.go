// Checkpoint codecs for the Property-1 types: each spec implements
// spec.Checkpointable so the universal construction's truncation
// protocol can fold dominated history prefixes into validated state
// checkpoints. Encodings go through encoding/json, which sorts map
// keys — so every codec here is canonical (two Equal states encode to
// identical bytes), which the Key cross-validation in
// spec.MakeCheckpoint relies on.
//
// The two deliberate Property-1 failures (Queue, StickyBit) get no
// codec on purpose: they are negative witnesses, and leaving them
// non-checkpointable exercises the graceful degradation path (a type
// without a codec simply never truncates).
package types

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/lattice"
	"repro/internal/spec"
)

// EncodeState implements spec.Checkpointable for the counter.
func (Counter) EncodeState(s spec.State) ([]byte, error) { return json.Marshal(s.(int64)) }

// DecodeState implements spec.Checkpointable for the counter.
func (Counter) DecodeState(data []byte) (spec.State, error) {
	var v int64
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("counter checkpoint: %w", err)
	}
	return v, nil
}

// EncodeState implements spec.Checkpointable for the max-register.
func (MaxReg) EncodeState(s spec.State) ([]byte, error) { return json.Marshal(s.(int64)) }

// DecodeState implements spec.Checkpointable for the max-register.
func (MaxReg) DecodeState(data []byte) (spec.State, error) {
	var v int64
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("maxreg checkpoint: %w", err)
	}
	return v, nil
}

// EncodeState implements spec.Checkpointable for the register.
func (Register) EncodeState(s spec.State) ([]byte, error) { return json.Marshal(s.(string)) }

// DecodeState implements spec.Checkpointable for the register.
func (Register) DecodeState(data []byte) (spec.State, error) {
	var v string
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("register checkpoint: %w", err)
	}
	return v, nil
}

// EncodeState implements spec.Checkpointable for the vector clock. A
// nil map (the initial state) and an empty map are behaviourally equal
// and share the encoding "{}".
func (Clock) EncodeState(s spec.State) ([]byte, error) {
	m := s.(lattice.IntMap)
	if m == nil {
		m = lattice.IntMap{}
	}
	return json.Marshal(map[string]int64(m))
}

// DecodeState implements spec.Checkpointable for the vector clock.
func (Clock) DecodeState(data []byte) (spec.State, error) {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("clock checkpoint: %w", err)
	}
	if m == nil {
		m = map[string]int64{}
	}
	return lattice.IntMap(m), nil
}

// EncodeState implements spec.Checkpointable for the grow-only set:
// the sorted element list.
func (GSet) EncodeState(s spec.State) ([]byte, error) {
	m := s.(setState)
	elems := make([]string, 0, len(m))
	for e := range m {
		elems = append(elems, e)
	}
	sort.Strings(elems)
	return json.Marshal(elems)
}

// DecodeState implements spec.Checkpointable for the grow-only set.
func (GSet) DecodeState(data []byte) (spec.State, error) {
	var elems []string
	if err := json.Unmarshal(data, &elems); err != nil {
		return nil, fmt.Errorf("gset checkpoint: %w", err)
	}
	out := make(setState, len(elems))
	for _, e := range elems {
		out[e] = struct{}{}
	}
	return out, nil
}

// EncodeState implements spec.Checkpointable for the counter-vector.
// The representation keeps zero counts absent, so the sorted-key JSON
// map is canonical.
func (KCounter) EncodeState(s spec.State) ([]byte, error) {
	return json.Marshal(map[string]int64(s.(kcState)))
}

// DecodeState implements spec.Checkpointable for the counter-vector.
func (KCounter) DecodeState(data []byte) (spec.State, error) {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("kcounter checkpoint: %w", err)
	}
	if m == nil {
		m = map[string]int64{}
	}
	return kcState(m), nil
}

// EncodeState implements spec.Checkpointable for the directory.
func (Directory) EncodeState(s spec.State) ([]byte, error) {
	return json.Marshal(map[string]string(s.(dirState)))
}

// DecodeState implements spec.Checkpointable for the directory.
func (Directory) DecodeState(data []byte) (spec.State, error) {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("directory checkpoint: %w", err)
	}
	if m == nil {
		m = map[string]string{}
	}
	return dirState(m), nil
}
