package types

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// Queue ops.
const (
	OpEnq = "enq"
	OpDeq = "deq"
)

// Enq returns an enq(v) invocation.
func Enq(v string) spec.Inv { return spec.Inv{Op: OpEnq, Arg: v} }

// Deq returns a deq() invocation; its response is the dequeued element
// or "" on empty (the operation is total, per Section 3.2).
func Deq() spec.Inv { return spec.Inv{Op: OpDeq} }

// Queue is a FIFO queue — the canonical NON-example. Section 1 notes
// that queues solve two-process consensus and therefore have no
// deterministic wait-free implementation from registers at all; here
// the failure manifests algebraically: two deq invocations neither
// commute (their responses swap) nor overwrite one another, so
// Property 1 fails and the universal construction rightly refuses the
// type. Experiment E10 prints the witness pair.
type Queue struct{}

// queueState is an immutable snapshot of queue contents.
type queueState []string

// Name identifies the type.
func (Queue) Name() string { return "queue" }

// Init returns the empty queue.
func (Queue) Init() spec.State { return queueState(nil) }

// Apply executes one operation. Deq on empty returns "" (total
// operations only).
func (Queue) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	v := s.(queueState)
	switch inv.Op {
	case OpEnq:
		out := make(queueState, len(v)+1)
		copy(out, v)
		out[len(v)] = inv.Arg.(string)
		return out, nil
	case OpDeq:
		if len(v) == 0 {
			return v, ""
		}
		return append(queueState(nil), v[1:]...), v[0]
	default:
		panic(fmt.Sprintf("queue: unknown operation %q", inv.Op))
	}
}

// Equal compares states element-wise.
func (Queue) Equal(a, b spec.State) bool {
	x, y := a.(queueState), b.(queueState)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Key encodes the state canonically.
func (Queue) Key(s spec.State) string { return strings.Join(s.(queueState), ",") }

// Commutes: identical enqueues commute trivially (the two orders are
// the same history), but nothing else does: the order of distinct
// enqueues is observable by later dequeues, and two dequeues' responses
// swap. (Two deqs on a queue known to be empty would commute, but
// Definition 10 quantifies over all histories.)
func (Queue) Commutes(p, q spec.Inv) bool {
	return p.Op == OpEnq && q.Op == OpEnq && p.Arg == q.Arg
}

// Overwrites: nothing overwrites anything — every operation's effect
// remains observable. (A deq does change the state, so it does not act
// like a read.)
func (Queue) Overwrites(q, p spec.Inv) bool { return false }

// SampleInvocations returns a representative invocation set.
func (Queue) SampleInvocations() []spec.Inv {
	return []spec.Inv{Enq("a"), Enq("b"), Deq()}
}

// SampleStates returns representative states.
func (Queue) SampleStates() []spec.State {
	return []spec.State{
		queueState(nil),
		queueState{"a"},
		queueState{"a", "b", "c"},
	}
}
