package types

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
)

// KCounter (counter-vector) ops.
const (
	OpVInc  = "vinc"
	OpVRead = "vread"
	OpVSum  = "vsum"
	OpVZero = "vzero"
)

// KD is a vinc argument: the key and the signed delta.
type KD struct {
	K string
	D int64
}

// VInc builds a vinc(k, d) invocation: add d to key k's counter.
func VInc(k string, d int64) spec.Inv { return spec.Inv{Op: OpVInc, Arg: KD{k, d}} }

// VRead builds a vread(k) invocation; its response is key k's value
// (0 when never incremented).
func VRead(k string) spec.Inv { return spec.Inv{Op: OpVRead, Arg: k} }

// VSum builds a vsum() invocation; its response is the sum over every
// key.
func VSum() spec.Inv { return spec.Inv{Op: OpVSum} }

// VZero builds a vzero() invocation: reset every key to 0.
func VZero() spec.Inv { return spec.Inv{Op: OpVZero} }

// kcState is an immutable key→count map; keys at 0 are absent, so the
// representation is canonical and Equal is map equality.
type kcState map[string]int64

// KCounter is a counter-vector: a map of named counters. It is the
// keyed closure of the paper's fetch-and-add counter (Section 5.1) —
// increments commute regardless of key (addition is commutative),
// reads of one key commute with increments of any other, the global
// reset overwrites everything, and both reads are overwritten by
// everything — so Property 1 holds. Unlike the directory it is also
// batchable (increments to the SAME key commute too), and unlike the
// scalar counter it is keyed, which makes it the canonical type for
// the sharded universal construction: vinc/vread route by key, while
// vsum and vzero are cross-partition.
type KCounter struct{}

// Name identifies the type.
func (KCounter) Name() string { return "kcounter" }

// Init returns the all-zero vector.
func (KCounter) Init() spec.State { return kcState{} }

// Apply executes one operation.
func (KCounter) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	m := s.(kcState)
	switch inv.Op {
	case OpVInc:
		kd := inv.Arg.(KD)
		if kd.D == 0 {
			return m, nil
		}
		out := make(kcState, len(m)+1)
		for k, v := range m {
			out[k] = v
		}
		out[kd.K] += kd.D
		if out[kd.K] == 0 {
			delete(out, kd.K)
		}
		return out, nil
	case OpVRead:
		return m, m[inv.Arg.(string)]
	case OpVSum:
		var sum int64
		for _, v := range m {
			sum += v
		}
		return m, sum
	case OpVZero:
		return kcState{}, nil
	default:
		panic(fmt.Sprintf("kcounter: unknown operation %q", inv.Op))
	}
}

// Equal compares states key-wise (canonical representation: no zero
// entries).
func (KCounter) Equal(a, b spec.State) bool {
	x, y := a.(kcState), b.(kcState)
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// Key encodes the state canonically.
func (KCounter) Key(s spec.State) string {
	m := s.(kcState)
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// kcKey returns the key an invocation touches, or "" for the
// cross-key vsum/vzero.
func kcKey(in spec.Inv) string {
	switch in.Op {
	case OpVInc:
		return in.Arg.(KD).K
	case OpVRead:
		return in.Arg.(string)
	default:
		return ""
	}
}

// Commutes: increments commute with increments (addition), reads with
// reads, an increment with a read of a different key, and resets with
// resets (both end empty with nil responses).
func (KCounter) Commutes(p, q spec.Inv) bool {
	pp, qp := p.Op == OpVRead || p.Op == OpVSum, q.Op == OpVRead || q.Op == OpVSum
	if pp && qp {
		return true
	}
	if p.Op == OpVInc && q.Op == OpVInc {
		return true
	}
	if p.Op == OpVZero && q.Op == OpVZero {
		return true
	}
	if p.Op == OpVInc && q.Op == OpVRead {
		return kcKey(p) != kcKey(q)
	}
	if p.Op == OpVRead && q.Op == OpVInc {
		return kcKey(p) != kcKey(q)
	}
	return false
}

// Overwrites: vzero overwrites everything; everything overwrites the
// pure vread and vsum.
func (KCounter) Overwrites(q, p spec.Inv) bool {
	return q.Op == OpVZero || p.Op == OpVRead || p.Op == OpVSum
}

// SampleInvocations returns a representative invocation set. The
// negative delta matters: it makes counts non-monotone, so tests of
// the sharded snapshot cannot lean on grow-only state.
func (KCounter) SampleInvocations() []spec.Inv {
	return []spec.Inv{
		VInc("a", 1), VInc("a", 2), VInc("b", 1), VInc("b", -1),
		VRead("a"), VRead("b"), VSum(), VZero(),
	}
}

// SampleStates returns representative states.
func (KCounter) SampleStates() []spec.State {
	return []spec.State{
		kcState{},
		kcState{"a": 1},
		kcState{"a": 2, "b": -1, "c": 5},
	}
}

// Pure declares vread and vsum as having no effect.
func (KCounter) Pure(inv spec.Inv) bool { return inv.Op == OpVRead || inv.Op == OpVSum }
