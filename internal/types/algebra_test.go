package types

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/spec"
)

// TestDeclaredAlgebraHolds validates every type's declared
// commute/overwrite relations against its executable specification on
// its sample states (Definitions 10/11), and confirms Property 1 for
// the constructible types.
func TestDeclaredAlgebraHolds(t *testing.T) {
	for _, s := range Property1Types() {
		t.Run(s.Name(), func(t *testing.T) {
			for _, v := range spec.CheckAlgebra(s, s.SampleStates(), s.SampleInvocations()) {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestAlgebraOnRandomStates extends the check to randomly generated
// reachable states: replay random invocation sequences and re-check
// the algebra at each resulting state.
func TestAlgebraOnRandomStates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range Property1Types() {
		t.Run(s.Name(), func(t *testing.T) {
			invs := s.SampleInvocations()
			var states []spec.State
			for trial := 0; trial < 20; trial++ {
				seq := make([]spec.Inv, rng.Intn(6))
				for i := range seq {
					seq[i] = invs[rng.Intn(len(invs))]
				}
				st, _ := spec.Replay(s, seq)
				states = append(states, st)
			}
			for _, v := range spec.CheckAlgebra(s, states, invs) {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestQueueFailsProperty1: the queue is the negative witness — two
// dequeues neither commute nor overwrite each other.
func TestQueueFailsProperty1(t *testing.T) {
	q := Queue{}
	ok, w := spec.SatisfiesProperty1(q, q.SampleInvocations())
	if ok {
		t.Fatal("queue unexpectedly satisfies Property 1")
	}
	_ = w
	// The declared (empty) relations must still be self-consistent.
	for _, v := range spec.CheckAlgebra(q, q.SampleStates(), q.SampleInvocations()) {
		if v.Kind != "property1" {
			t.Errorf("queue declaration inconsistent: %s", v)
		}
	}
}

// TestQueueDeqsReallyConflict verifies the semantic content of the
// failure: two deqs on a non-empty queue produce order-dependent
// responses.
func TestQueueDeqsReallyConflict(t *testing.T) {
	q := Queue{}
	st, _ := spec.Replay(q, []spec.Inv{Enq("a"), Enq("b")})
	s1, r1 := q.Apply(st, Deq())
	_, r2 := q.Apply(s1, Deq())
	if r1 == r2 {
		t.Fatal("two deqs returned the same element")
	}
	if r1 != "a" || r2 != "b" {
		t.Fatalf("FIFO order broken: %v, %v", r1, r2)
	}
}

// lyingCounter claims inc commutes with reset — CheckAlgebra must
// catch the lie. This is the CI tripwire DESIGN.md promises.
type lyingCounter struct{ Counter }

func (lyingCounter) Commutes(p, q spec.Inv) bool {
	if (p.Op == OpInc && q.Op == OpReset) || (p.Op == OpReset && q.Op == OpInc) {
		return true
	}
	return Counter{}.Commutes(p, q)
}

func TestCheckAlgebraCatchesFalseCommute(t *testing.T) {
	s := lyingCounter{}
	vs := spec.CheckAlgebra(s, Counter{}.SampleStates(), Counter{}.SampleInvocations())
	found := false
	for _, v := range vs {
		if v.Kind == "commute" {
			found = true
		}
	}
	if !found {
		t.Fatal("CheckAlgebra missed a false commutativity claim")
	}
}

// lyingOverwriter claims inc overwrites dec.
type lyingOverwriter struct{ Counter }

func (lyingOverwriter) Overwrites(q, p spec.Inv) bool {
	if q.Op == OpInc && p.Op == OpDec {
		return true
	}
	return Counter{}.Overwrites(q, p)
}

func TestCheckAlgebraCatchesFalseOverwrite(t *testing.T) {
	s := lyingOverwriter{}
	vs := spec.CheckAlgebra(s, Counter{}.SampleStates(), Counter{}.SampleInvocations())
	found := false
	for _, v := range vs {
		if v.Kind == "overwrite" {
			found = true
		}
	}
	if !found {
		t.Fatal("CheckAlgebra missed a false overwrite claim")
	}
}

// TestOverwritesTransitive checks Lemma 12 on the declared relations:
// if r overwrites q and q overwrites p then r overwrites p.
func TestOverwritesTransitive(t *testing.T) {
	for _, s := range AllTypes() {
		invs := s.SampleInvocations()
		for _, p := range invs {
			for _, q := range invs {
				for _, r := range invs {
					if s.Overwrites(r, q) && s.Overwrites(q, p) && !s.Overwrites(r, p) {
						t.Errorf("%s: overwrites not transitive: %v over %v over %v",
							s.Name(), r, q, p)
					}
				}
			}
		}
	}
}

// TestDominanceStrictPartialOrder checks Lemma 15: dominance is
// transitive and antisymmetric over sampled (invocation, process)
// pairs.
func TestDominanceStrictPartialOrder(t *testing.T) {
	for _, s := range AllTypes() {
		type node struct {
			inv  spec.Inv
			proc int
		}
		var nodes []node
		for i, inv := range s.SampleInvocations() {
			nodes = append(nodes, node{inv, i % 3}, node{inv, (i + 1) % 3})
		}
		dom := func(a, b node) bool {
			return spec.Dominates(s, a.inv, a.proc, b.inv, b.proc)
		}
		for _, a := range nodes {
			if dom(a, a) {
				t.Errorf("%s: %v@%d dominates itself", s.Name(), a.inv, a.proc)
			}
			for _, b := range nodes {
				if dom(a, b) && dom(b, a) {
					t.Errorf("%s: mutual dominance between %v@%d and %v@%d",
						s.Name(), a.inv, a.proc, b.inv, b.proc)
				}
				for _, c := range nodes {
					if dom(a, b) && dom(b, c) && !dom(a, c) {
						t.Errorf("%s: dominance not transitive", s.Name())
					}
				}
			}
		}
	}
}

// TestPropertyOneHoldsForConstructibleTypes is the headline E10 check.
func TestPropertyOneHoldsForConstructibleTypes(t *testing.T) {
	for _, s := range Property1Types() {
		if ok, w := spec.SatisfiesProperty1(s, s.SampleInvocations()); !ok {
			t.Errorf("%s: Property 1 fails on %v / %v", s.Name(), w[0], w[1])
		}
	}
}

// TestReplayAndResponses exercises each spec's Apply on a short
// scripted history with known answers.
func TestReplayAndResponses(t *testing.T) {
	t.Run("counter", func(t *testing.T) {
		_, rs := spec.Replay(Counter{}, []spec.Inv{Inc(5), Dec(2), Read(), Reset(10), Read()})
		if rs[2] != int64(3) || rs[4] != int64(10) {
			t.Errorf("responses = %v", rs)
		}
	})
	t.Run("gset", func(t *testing.T) {
		_, rs := spec.Replay(GSet{}, []spec.Inv{Add("b"), Add("a"), Members(), Clear(), Members()})
		m := rs[2].([]string)
		if len(m) != 2 || m[0] != "a" || m[1] != "b" {
			t.Errorf("members = %v", m)
		}
		if len(rs[4].([]string)) != 0 {
			t.Errorf("members after clear = %v", rs[4])
		}
	})
	t.Run("maxreg", func(t *testing.T) {
		_, rs := spec.Replay(MaxReg{}, []spec.Inv{WriteMax(5), WriteMax(3), ReadMaxInv()})
		if rs[2] != int64(5) {
			t.Errorf("readmax = %v", rs[2])
		}
	})
	t.Run("clock", func(t *testing.T) {
		_, rs := spec.Replay(Clock{}, []spec.Inv{
			Merge(lattice.IntMap{"a": 1}),
			Merge(lattice.IntMap{"a": 3, "b": 1}),
			ReadClock(),
		})
		m := rs[2].(lattice.IntMap)
		if m["a"] != 3 || m["b"] != 1 {
			t.Errorf("clock = %v", m)
		}
	})
	t.Run("queue", func(t *testing.T) {
		_, rs := spec.Replay(Queue{}, []spec.Inv{Deq(), Enq("x"), Deq(), Deq()})
		if rs[0] != "" || rs[2] != "x" || rs[3] != "" {
			t.Errorf("responses = %v", rs)
		}
	})
}

// TestStateKeysDistinguish: Key must separate distinct states and
// agree on equal ones (it is the memoization key for lincheck).
func TestStateKeysDistinguish(t *testing.T) {
	for _, s := range AllTypes() {
		states := s.SampleStates()
		for i, a := range states {
			for j, b := range states {
				eq := s.Equal(a, b)
				keq := s.Key(a) == s.Key(b)
				if eq != keq {
					t.Errorf("%s: Equal(%d,%d)=%v but key equality %v", s.Name(), i, j, eq, keq)
				}
			}
		}
	}
}
