package types

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
)

// Set ops.
const (
	OpAdd     = "add"
	OpClear   = "clear"
	OpMembers = "members"
)

// Add returns an add(elem) invocation.
func Add(elem string) spec.Inv { return spec.Inv{Op: OpAdd, Arg: elem} }

// Clear returns a clear() invocation.
func Clear() spec.Inv { return spec.Inv{Op: OpClear} }

// Members returns a members() invocation; its response is the sorted
// member list.
func Members() spec.Inv { return spec.Inv{Op: OpMembers} }

// setState is an immutable string set state.
type setState map[string]struct{}

// GSet is one of the paper's "certain kinds of set abstractions"
// (Section 1): a set whose add operations commute with each other,
// whose clear overwrites everything, and whose members query is
// overwritten by everything. Removal of individual elements is
// deliberately absent — remove(x) neither commutes with add(x) nor
// overwrites it, so it would break Property 1 (and indeed such a set
// solves consensus).
type GSet struct{}

// Name identifies the type.
func (GSet) Name() string { return "gset" }

// Init returns the empty set.
func (GSet) Init() spec.State { return setState{} }

// Apply executes one operation.
func (GSet) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	v := s.(setState)
	switch inv.Op {
	case OpAdd:
		elem := inv.Arg.(string)
		if _, ok := v[elem]; ok {
			return v, nil
		}
		out := make(setState, len(v)+1)
		for k := range v {
			out[k] = struct{}{}
		}
		out[elem] = struct{}{}
		return out, nil
	case OpClear:
		return setState{}, nil
	case OpMembers:
		out := make([]string, 0, len(v))
		for k := range v {
			out = append(out, k)
		}
		sort.Strings(out)
		return v, out
	default:
		panic(fmt.Sprintf("gset: unknown operation %q", inv.Op))
	}
}

// Equal compares states as sets.
func (GSet) Equal(a, b spec.State) bool {
	x, y := a.(setState), b.(setState)
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if _, ok := y[k]; !ok {
			return false
		}
	}
	return true
}

// Key encodes the state canonically.
func (GSet) Key(s spec.State) string {
	v := s.(setState)
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// Commutes: adds commute with adds (set union is order-independent),
// members with members, clears with clears (both end empty with nil
// responses).
func (GSet) Commutes(p, q spec.Inv) bool {
	return (p.Op == OpAdd && q.Op == OpAdd) ||
		(p.Op == OpMembers && q.Op == OpMembers) ||
		(p.Op == OpClear && q.Op == OpClear)
}

// Overwrites: clear overwrites everything; everything overwrites
// members.
func (GSet) Overwrites(q, p spec.Inv) bool {
	return q.Op == OpClear || p.Op == OpMembers
}

// SampleInvocations returns a representative invocation set.
func (GSet) SampleInvocations() []spec.Inv {
	return []spec.Inv{Add("x"), Add("y"), Add("x"), Clear(), Members()}
}

// SampleStates returns representative states.
func (GSet) SampleStates() []spec.State {
	return []spec.State{
		setState{},
		setState{"x": {}},
		setState{"x": {}, "y": {}, "z": {}},
	}
}

// Pure declares members as having no effect.
func (GSet) Pure(inv spec.Inv) bool { return inv.Op == OpMembers }

// MaxReg ops.
const (
	OpWriteMax = "writemax"
	OpReadMax  = "readmax"
)

// WriteMax returns a writemax(v) invocation.
func WriteMax(v int64) spec.Inv { return spec.Inv{Op: OpWriteMax, Arg: v} }

// ReadMaxInv returns a readmax() invocation.
func ReadMaxInv() spec.Inv { return spec.Inv{Op: OpReadMax} }

// MaxReg is a max-register: writemax(v) raises the state to at least
// v, readmax returns the current maximum. Writemax operations commute
// (max is a join); everything overwrites readmax.
type MaxReg struct{}

// Name identifies the type.
func (MaxReg) Name() string { return "maxreg" }

// Init returns the smallest state (0; the register holds naturals).
func (MaxReg) Init() spec.State { return int64(0) }

// Apply executes one operation.
func (MaxReg) Apply(s spec.State, inv spec.Inv) (spec.State, any) {
	v := s.(int64)
	switch inv.Op {
	case OpWriteMax:
		w := inv.Arg.(int64)
		if w > v {
			return w, nil
		}
		return v, nil
	case OpReadMax:
		return v, v
	default:
		panic(fmt.Sprintf("maxreg: unknown operation %q", inv.Op))
	}
}

// Equal compares states.
func (MaxReg) Equal(a, b spec.State) bool { return a.(int64) == b.(int64) }

// Key encodes the state canonically.
func (MaxReg) Key(s spec.State) string { return fmt.Sprint(s.(int64)) }

// Commutes: writemaxes commute, reads commute.
func (MaxReg) Commutes(p, q spec.Inv) bool {
	return (p.Op == OpWriteMax && q.Op == OpWriteMax) ||
		(p.Op == OpReadMax && q.Op == OpReadMax)
}

// Overwrites: everything overwrites readmax; a writemax also
// overwrites any writemax of a smaller-or-equal value... except that
// Definition 11 quantifies over all states, so only the read rule is
// safe to declare unconditionally. (writemax(5) overwrites writemax(3)
// in every state, since max(max(s,3),5) = max(s,5); declare that too.)
func (MaxReg) Overwrites(q, p spec.Inv) bool {
	if p.Op == OpReadMax {
		return true
	}
	if q.Op == OpWriteMax && p.Op == OpWriteMax {
		return q.Arg.(int64) >= p.Arg.(int64)
	}
	return false
}

// SampleInvocations returns a representative invocation set.
func (MaxReg) SampleInvocations() []spec.Inv {
	return []spec.Inv{WriteMax(1), WriteMax(7), WriteMax(7), ReadMaxInv()}
}

// SampleStates returns representative states.
func (MaxReg) SampleStates() []spec.State {
	return []spec.State{int64(0), int64(3), int64(100)}
}

// Pure declares readmax as having no effect.
func (MaxReg) Pure(inv spec.Inv) bool { return inv.Op == OpReadMax }
