// Package lingraph implements the linearization-graph construction of
// Section 5.3 (Figure 3): given a precedence graph — a DAG whose edge
// p→q records that operation p preceded operation q in real time — and
// the dominance relation of Definition 14, it adds a maximal set of
// dominance edges (directed from dominated to dominator, so dominated
// operations linearize earlier) that does not create a cycle, visiting
// pairs in a precedence-consistent order exactly as the paper's
// pseudocode does. A topological sort of the result is a linearization
// (Definition 19); Lemma 20 guarantees all such linearizations are
// equivalent.
//
// Nodes are dense indices 0..K-1; the caller keeps its own mapping to
// operations and supplies the dominance relation as a callback, which
// keeps this package independent of any particular specification.
package lingraph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Graph is a precedence graph under construction.
type Graph struct {
	k   int
	out [][]int // direct precedence edges i -> j (i precedes j)
}

// NewGraph returns an empty precedence graph on k nodes.
func NewGraph(k int) *Graph {
	return &Graph{k: k, out: make([][]int, k)}
}

// K returns the node count.
func (g *Graph) K() int { return g.k }

// AddPrecedence records that node i precedes node j.
func (g *Graph) AddPrecedence(i, j int) {
	g.check(i)
	g.check(j)
	if i == j {
		panic("lingraph: self-precedence")
	}
	g.out[i] = append(g.out[i], j)
}

func (g *Graph) check(i int) {
	if i < 0 || i >= g.k {
		panic(fmt.Sprintf("lingraph: node %d out of range [0,%d)", i, g.k))
	}
}

// bitset is a fixed-size bit vector over node indices.
type bitset []uint64

func newBitset(k int) bitset { return make(bitset, (k+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Lin is a linearization graph L(G): the precedence graph plus the
// maximal acyclic set of dominance edges.
type Lin struct {
	k     int
	out   [][]int  // combined edge lists
	reach []bitset // reach[i] = nodes reachable from i, including i
	prec  []bitset // reachability over precedence edges only
}

// Build runs the Figure 3 construction. dom(i, j) must report whether
// node i's operation dominates node j's (Definition 14); it is
// consulted only for pairs not related by precedence. Build returns an
// error if the precedence graph is cyclic.
func Build(g *Graph, dom func(i, j int) bool) (*Lin, error) {
	order, err := topoOrder(g.k, g.out)
	if err != nil {
		return nil, err
	}
	l := &Lin{
		k:     g.k,
		out:   make([][]int, g.k),
		reach: make([]bitset, g.k),
		prec:  make([]bitset, g.k),
	}
	for i := 0; i < g.k; i++ {
		l.out[i] = append([]int(nil), g.out[i]...)
		l.reach[i] = newBitset(g.k)
		l.reach[i].set(i)
	}
	// Seed reachability from the precedence DAG in reverse topological
	// order, then snapshot it as the precedence-only relation.
	for idx := g.k - 1; idx >= 0; idx-- {
		u := order[idx]
		for _, v := range g.out[u] {
			l.reach[u].or(l.reach[v])
		}
	}
	for i := 0; i < g.k; i++ {
		l.prec[i] = append(bitset(nil), l.reach[i]...)
	}
	// The pairwise pass of Figure 3, in the precedence-consistent
	// order: for i < j, try to point the dominated one at the
	// dominator unless that closes a cycle.
	for a := 0; a < g.k; a++ {
		pi := order[a]
		for b := a + 1; b < g.k; b++ {
			pj := order[b]
			switch {
			case dom(pi, pj) && !l.reach[pi].has(pj):
				l.addEdge(pj, pi)
			case dom(pj, pi) && !l.reach[pj].has(pi):
				l.addEdge(pi, pj)
			}
		}
	}
	return l, nil
}

// addEdge inserts u→v and updates reachability: every node that
// reaches u now also reaches everything v reaches.
func (l *Lin) addEdge(u, v int) {
	l.out[u] = append(l.out[u], v)
	rv := l.reach[v]
	for w := 0; w < l.k; w++ {
		if w == u || l.reach[w].has(u) {
			l.reach[w].or(rv)
		}
	}
}

// K returns the node count.
func (l *Lin) K() int { return l.k }

// HasPath reports whether v is reachable from u in L(G) (u ⇒ v).
func (l *Lin) HasPath(u, v int) bool { return u != v && l.reach[u].has(v) }

// Precedes reports the transitive real-time precedence of the
// underlying graph.
func (l *Lin) Precedes(u, v int) bool { return u != v && l.prec[u].has(v) }

// Concurrent reports that neither node precedes the other.
func (l *Lin) Concurrent(u, v int) bool {
	return u != v && !l.Precedes(u, v) && !l.Precedes(v, u)
}

// Unrelated reports that L(G) has no path between u and v in either
// direction; by Lemma 17 such operations commute.
func (l *Lin) Unrelated(u, v int) bool {
	return u != v && !l.HasPath(u, v) && !l.HasPath(v, u)
}

// Order returns a deterministic topological sort of L(G): among ready
// nodes, the lowest index first. This is a linearization in the sense
// of Definition 19.
func (l *Lin) Order() []int {
	indeg := make([]int, l.k)
	for _, vs := range l.out {
		for _, v := range vs {
			indeg[v]++
		}
	}
	var ready []int
	for i := 0; i < l.k; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	out := make([]int, 0, l.k)
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		out = append(out, u)
		var woke []int
		for _, v := range l.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				woke = append(woke, v)
			}
		}
		if len(woke) > 0 {
			ready = append(ready, woke...)
			sort.Ints(ready)
		}
	}
	if len(out) != l.k {
		// Lemma 18 says this cannot happen; a cycle here is a bug in
		// the construction itself.
		panic("lingraph: linearization graph contains a cycle")
	}
	return out
}

// topoOrder returns a deterministic topological order of the
// precedence DAG (lowest index first among ready nodes), or an error
// if the graph is cyclic.
func topoOrder(k int, out [][]int) ([]int, error) {
	indeg := make([]int, k)
	for _, vs := range out {
		for _, v := range vs {
			indeg[v]++
		}
	}
	var ready []int
	for i := 0; i < k; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, k)
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		var woke []int
		for _, v := range out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				woke = append(woke, v)
			}
		}
		if len(woke) > 0 {
			ready = append(ready, woke...)
			sort.Ints(ready)
		}
	}
	if len(order) != k {
		return nil, fmt.Errorf("lingraph: precedence graph is cyclic")
	}
	return order, nil
}
