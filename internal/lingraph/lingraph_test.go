package lingraph

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/types"
)

// interval is a synthetic operation interval for generating precedence
// graphs the way real histories do (precedence = disjoint intervals).
// Interval orders are exactly what Section 5.3's lemmas assume (cf.
// Lemma 13).
type interval struct{ start, end int }

// randomCase generates k counter operations with random intervals and
// processes, returning the precedence graph and a dominance callback
// derived from the real Definition 14 relation.
func randomCase(rng *rand.Rand, k int) (*Graph, func(i, j int) bool, []interval) {
	s := types.Counter{}
	invs := s.SampleInvocations()
	ops := make([]spec.Inv, k)
	procs := make([]int, k)
	ivs := make([]interval, k)
	g := NewGraph(k)
	for i := 0; i < k; i++ {
		ops[i] = invs[rng.Intn(len(invs))]
		procs[i] = rng.Intn(4)
		start := rng.Intn(40)
		ivs[i] = interval{start, start + 1 + rng.Intn(10)}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if ivs[i].end < ivs[j].start {
				g.AddPrecedence(i, j)
			}
		}
	}
	dom := func(i, j int) bool {
		return spec.Dominates(s, ops[i], procs[i], ops[j], procs[j])
	}
	return g, dom, ivs
}

func TestChainPrecedenceOrder(t *testing.T) {
	g := NewGraph(3)
	g.AddPrecedence(2, 1)
	g.AddPrecedence(1, 0)
	l, err := Build(g, func(i, j int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	got := l.Order()
	want := []int{2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Order = %v, want %v", got, want)
		}
	}
	if !l.Precedes(2, 0) {
		t.Error("transitive precedence missing")
	}
	if l.Concurrent(2, 1) {
		t.Error("chained nodes reported concurrent")
	}
}

func TestCyclicPrecedenceRejected(t *testing.T) {
	g := NewGraph(2)
	g.AddPrecedence(0, 1)
	g.AddPrecedence(1, 0)
	if _, err := Build(g, func(i, j int) bool { return false }); err == nil {
		t.Fatal("cyclic precedence graph accepted")
	}
}

func TestDominanceEdgeAdded(t *testing.T) {
	// Two concurrent ops, 1 dominates 0: edge 0 -> 1 must appear, so
	// the dominated op linearizes first.
	g := NewGraph(2)
	l, err := Build(g, func(i, j int) bool { return i == 1 && j == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !l.HasPath(0, 1) {
		t.Fatal("missing dominance edge")
	}
	got := l.Order()
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("Order = %v, want dominated first", got)
	}
}

func TestDominanceNeverOverridesPrecedence(t *testing.T) {
	// 0 precedes 1, but 0 dominates 1: the dominance edge 1 -> 0 would
	// create a cycle and must be skipped.
	g := NewGraph(2)
	g.AddPrecedence(0, 1)
	l, err := Build(g, func(i, j int) bool { return i == 0 && j == 1 })
	if err != nil {
		t.Fatal(err)
	}
	got := l.Order()
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("Order = %v; precedence must win", got)
	}
}

// TestLemma16 on random cases: if p and q are concurrent and one
// dominates the other, L(G) relates them by a path.
func TestLemma16(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(10)
		g, dom, _ := randomCase(rng, k)
		l, err := Build(g, dom)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i == j || !l.Concurrent(i, j) {
					continue
				}
				if (dom(i, j) || dom(j, i)) && l.Unrelated(i, j) {
					t.Fatalf("trial %d: concurrent dominating pair (%d,%d) unrelated in L(G)", trial, i, j)
				}
			}
		}
	}
}

// TestOrderIsTopological on random cases: the produced order respects
// every edge of L(G), and in particular all precedence edges.
func TestOrderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(12)
		g, dom, _ := randomCase(rng, k)
		l, err := Build(g, dom)
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, k)
		for idx, node := range l.Order() {
			pos[node] = idx
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j && l.Precedes(i, j) && pos[i] > pos[j] {
					t.Fatalf("trial %d: order violates precedence %d before %d", trial, i, j)
				}
				if i != j && l.HasPath(i, j) && pos[i] > pos[j] {
					t.Fatalf("trial %d: order violates L(G) path %d => %d", trial, i, j)
				}
			}
		}
	}
}

// TestLemma23Subgraph: removing an operation with no outgoing
// precedence edges yields a linearization graph that is a subgraph of
// the original.
func TestLemma23Subgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		k := 3 + rng.Intn(8)
		g, dom, _ := randomCase(rng, k)
		// Find a node with no outgoing precedence edges.
		hasOut := make([]bool, k)
		for i := 0; i < k; i++ {
			hasOut[i] = len(g.out[i]) > 0
		}
		p := -1
		for i := k - 1; i >= 0; i-- {
			if !hasOut[i] {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		lFull, err := Build(g, dom)
		if err != nil {
			t.Fatal(err)
		}
		// Build G' = G - p with indices remapped.
		remap := make([]int, 0, k-1)
		for i := 0; i < k; i++ {
			if i != p {
				remap = append(remap, i)
			}
		}
		back := map[int]int{}
		for newIdx, old := range remap {
			back[old] = newIdx
		}
		g2 := NewGraph(k - 1)
		for i := 0; i < k; i++ {
			if i == p {
				continue
			}
			for _, j := range g.out[i] {
				if j != p {
					g2.AddPrecedence(back[i], back[j])
				}
			}
		}
		dom2 := func(i, j int) bool { return dom(remap[i], remap[j]) }
		lSub, err := Build(g2, dom2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k-1; i++ {
			for j := 0; j < k-1; j++ {
				if i != j && lSub.HasPath(i, j) && !lFull.HasPath(remap[i], remap[j]) {
					t.Fatalf("trial %d: L(G-p) has path %d=>%d missing from L(G)",
						trial, remap[i], remap[j])
				}
			}
		}
	}
}

// TestDeterminism: same inputs, same order.
func TestDeterminism(t *testing.T) {
	build := func() []int {
		rng := rand.New(rand.NewSource(77))
		g, dom, _ := randomCase(rng, 9)
		l, err := Build(g, dom)
		if err != nil {
			t.Fatal(err)
		}
		return l.Order()
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a, b)
		}
	}
}

// TestAcyclicAlways (Lemma 18): Order never panics on random cases,
// even with adversarially dense dominance.
func TestAcyclicAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		k := 2 + rng.Intn(14)
		g, _, _ := randomCase(rng, k)
		// Random (possibly non-transitive) dominance to stress cycle
		// avoidance; Figure 3 must still produce a DAG.
		domMatrix := make([][]bool, k)
		for i := range domMatrix {
			domMatrix[i] = make([]bool, k)
			for j := range domMatrix[i] {
				domMatrix[i][j] = i != j && rng.Intn(3) == 0
			}
		}
		l, err := Build(g, func(i, j int) bool { return domMatrix[i][j] })
		if err != nil {
			t.Fatal(err)
		}
		_ = l.Order() // panics on a cycle
	}
}

func TestValidationPanics(t *testing.T) {
	g := NewGraph(2)
	for _, f := range []func(){
		func() { g.AddPrecedence(0, 0) },
		func() { g.AddPrecedence(-1, 1) },
		func() { g.AddPrecedence(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKAccessors(t *testing.T) {
	g := NewGraph(5)
	if g.K() != 5 {
		t.Errorf("Graph K = %d", g.K())
	}
	l, err := Build(g, func(i, j int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if l.K() != 5 {
		t.Errorf("Lin K = %d", l.K())
	}
	// All nodes pairwise concurrent and unrelated.
	if !l.Concurrent(0, 4) || !l.Unrelated(0, 4) {
		t.Error("empty graph: nodes must be concurrent and unrelated")
	}
}
