package lingraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickInvariants property-checks the lingraph invariants the
// Section 5.3 lemmas rely on, over random interval-order precedence
// graphs and random dominance relations:
//
//  1. L(G) is acyclic (Lemma 18) — Order() never panics;
//  2. precedence is preserved: G's reachability embeds in L(G);
//  3. concurrent pairs related by dominance are connected (Lemma 16);
//  4. Unrelated pairs are never dominance-related either way.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(12)
		// Interval order precedence.
		starts := make([]int, k)
		ends := make([]int, k)
		g := NewGraph(k)
		for i := 0; i < k; i++ {
			starts[i] = rng.Intn(30)
			ends[i] = starts[i] + 1 + rng.Intn(8)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if ends[i] < starts[j] {
					g.AddPrecedence(i, j)
				}
			}
		}
		// Random dominance restricted to a strict order on classes, so
		// it resembles a real Definition 14 relation: class(i) <
		// class(j) means j dominates i.
		class := make([]int, k)
		for i := range class {
			class[i] = rng.Intn(4)
		}
		dom := func(i, j int) bool { return class[i] > class[j] }

		l, err := Build(g, dom)
		if err != nil {
			return false
		}
		order := l.Order() // 1: panics on a cycle
		pos := make([]int, k)
		for idx, n := range order {
			pos[n] = idx
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				if ends[i] < starts[j] && !l.Precedes(i, j) {
					return false // 2: precedence lost
				}
				if l.Precedes(i, j) && pos[i] > pos[j] {
					return false // 2: order violates precedence
				}
				if l.Concurrent(i, j) && (dom(i, j) || dom(j, i)) && l.Unrelated(i, j) {
					return false // 3: Lemma 16
				}
				if l.Unrelated(i, j) && (dom(i, j) || dom(j, i)) {
					return false // 4: unrelated implies commuting pair
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickDominatedFirst: for a two-node concurrent graph, the
// dominated node always linearizes first — the construction's stated
// intent ("we would like dominated operations to be placed earlier").
func TestQuickDominatedFirst(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(2)
		winner := rng.Intn(2)
		l, err := Build(g, func(i, j int) bool { return i == winner })
		if err != nil {
			return false
		}
		return l.Order()[0] == 1-winner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
