// Package snapshot implements the atomic scan of Aspnes & Herlihy,
// Section 6 (Figure 5): a wait-free atomic snapshot of an array of
// single-writer multi-reader registers, generalized to an arbitrary
// ∨-semilattice. A Scan(P, v) joins v into the shared state and
// returns the join of all values written so far; Write_L discards the
// return value and ReadMax scans with ⊥.
//
// Two execution modes are provided:
//
//   - ScanMachine: a step-granular state machine for the asynchronous
//     PRAM simulator, in both the paper's literal form (n²+n+1 reads,
//     n+2 writes per Scan) and the Section 6.2 optimized form (n²−1
//     reads, n+1 writes);
//   - Snapshot: a native goroutine implementation on atomic registers.
//
// The package also provides the end-of-Section-6 construction of a
// classic array snapshot on top of the tagged-vector lattice (Array),
// and three baselines for the paper's Section 2 comparisons: a
// lock-based snapshot, a double-collect snapshot (lock-free but not
// wait-free), and the Afek et al. single-writer snapshot.
package snapshot

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/pram"
)

// Layout places the scan matrix of Figure 5 in a simulated memory:
// register Reg(p, i) is scan[p][i] for i in 0..n+1, owned by p.
type Layout struct {
	Base int
	N    int
}

// Regs returns the number of registers the layout occupies.
func (l Layout) Regs() int { return l.N * (l.N + 2) }

// Reg returns the register index of scan[p][i].
func (l Layout) Reg(p, i int) int {
	if i < 0 || i > l.N+1 {
		panic(fmt.Sprintf("snapshot: slot %d out of range [0,%d]", i, l.N+1))
	}
	return l.Base + p*(l.N+2) + i
}

// Install initializes every register to ⊥ and assigns owners.
func (l Layout) Install(m pram.Memory, lat lattice.Lattice) {
	bot := lat.Bottom()
	for p := 0; p < l.N; p++ {
		for i := 0; i <= l.N+1; i++ {
			m.Init(l.Reg(p, i), bot)
			m.SetOwner(l.Reg(p, i), p)
		}
	}
}

type scanPhase int

const (
	phIdle      scanPhase = iota // between operations
	phInitRead                   // literal variant: read scan[P][0]
	phInitWrite                  // literal variant: write scan[P][0]
	phPass                       // the i-loop of lines 3..7
)

// ScanMachine executes a queue of Scan operations for one process as a
// step-granular state machine. Each Step performs exactly one shared
// read or write; per-operation access counts match Section 6.2 exactly
// (see TestScanOperationCounts).
//
// The machine keeps a persistent local copy of the process's own
// registers across operations. In the optimized variant this is what
// eliminates self-reads; in the literal variant it only mirrors the
// single-writer invariant (the machine still performs every read the
// paper's count includes).
type ScanMachine struct {
	proc      int
	lay       Layout
	lat       lattice.Lattice
	optimized bool

	queue   []any // pending scan arguments
	results []any // completed scan results
	local   []any // local copy of own registers scan[proc][0..n+1]

	ph  scanPhase
	cur any // argument of the operation in progress
	i   int // current pass, 1..n+1
	q   int // reads completed within the current pass
	acc any // running join for the current pass
}

// NewScanMachine returns a machine for process proc. If optimized is
// true the machine skips self-reads and the final write, per the
// Section 6.2 accounting.
func NewScanMachine(proc int, lay Layout, lat lattice.Lattice, optimized bool) *ScanMachine {
	if proc < 0 || proc >= lay.N {
		panic(fmt.Sprintf("snapshot: process %d out of range", proc))
	}
	local := make([]any, lay.N+2)
	for i := range local {
		local[i] = lat.Bottom()
	}
	return &ScanMachine{proc: proc, lay: lay, lat: lat, optimized: optimized, local: local}
}

// Enqueue appends a Scan(v) operation to the machine's script. Use the
// lattice's Bottom for a pure ReadMax.
func (mc *ScanMachine) Enqueue(v any) { mc.queue = append(mc.queue, v) }

// Results returns the return values of completed scans, in order.
func (mc *ScanMachine) Results() []any { return mc.results }

// Completed returns the number of finished scans (pram.Progress).
func (mc *ScanMachine) Completed() int { return len(mc.results) }

// DropResults discards the completed-scan result log, resetting
// Completed to zero. Long-running drivers that consume each result as
// it completes call this between operations so the machine's footprint
// is bounded by in-flight work, not by how many scans it has ever run.
func (mc *ScanMachine) DropResults() {
	for i := range mc.results {
		mc.results[i] = nil
	}
	mc.results = mc.results[:0]
}

// Done reports whether every enqueued operation has completed.
func (mc *ScanMachine) Done() bool { return mc.ph == phIdle && len(mc.queue) == 0 }

// Clone returns an independent copy of the machine.
func (mc *ScanMachine) Clone() pram.Machine {
	cp := *mc
	cp.queue = append([]any(nil), mc.queue...)
	cp.results = append([]any(nil), mc.results...)
	cp.local = append([]any(nil), mc.local...)
	return &cp
}

// readsPerPass returns how many register reads a pass performs.
func (mc *ScanMachine) readsPerPass() int {
	if mc.optimized {
		return mc.lay.N - 1
	}
	return mc.lay.N
}

// readTarget returns the process whose register the q-th read of a
// pass targets, skipping self in the optimized variant.
func (mc *ScanMachine) readTarget(q int) int {
	if mc.optimized && q >= mc.proc {
		return q + 1
	}
	return q
}

// lastPass is n+1: the final pass, whose write the optimized variant
// skips.
func (mc *ScanMachine) lastPass() int { return mc.lay.N + 1 }

// startPass begins pass i, seeding the accumulator from local copies.
// In the optimized variant the skipped self-read of scan[P][i-1] is
// replaced by the local copy. If the final optimized pass has no reads
// (n == 1), the operation completes immediately.
func (mc *ScanMachine) startPass(i int) {
	mc.ph = phPass
	mc.i = i
	mc.q = 0
	mc.acc = mc.local[i]
	if mc.optimized {
		mc.acc = mc.lat.Join(mc.acc, mc.local[i-1])
		if i == mc.lastPass() && mc.readsPerPass() == 0 {
			mc.finish()
		}
	}
}

// finish completes the operation in progress with result acc.
func (mc *ScanMachine) finish() {
	mc.local[mc.lastPass()] = mc.acc
	mc.results = append(mc.results, mc.acc)
	mc.ph = phIdle
}

// Step performs the machine's next shared-memory access.
func (mc *ScanMachine) Step(m pram.Memory) {
	switch mc.ph {
	case phIdle:
		if len(mc.queue) == 0 {
			panic("snapshot: Step after Done")
		}
		mc.cur = mc.queue[0]
		mc.queue = mc.queue[1:]
		if mc.optimized {
			// Line 2 without the self-read: the local copy stands in
			// for the current register contents.
			mc.local[0] = mc.lat.Join(mc.cur, mc.local[0])
			m.Write(mc.proc, mc.lay.Reg(mc.proc, 0), mc.local[0])
			mc.startPass(1)
			return
		}
		// Line 2, literal: read scan[P][0] ...
		mc.acc = m.Read(mc.proc, mc.lay.Reg(mc.proc, 0))
		mc.ph = phInitWrite

	case phInitWrite:
		// ... then write v ∨ scan[P][0].
		mc.local[0] = mc.lat.Join(mc.cur, mc.acc)
		m.Write(mc.proc, mc.lay.Reg(mc.proc, 0), mc.local[0])
		mc.startPass(1)

	case phPass:
		if mc.q < mc.readsPerPass() {
			// Line 5: join in scan[Q][i-1].
			target := mc.readTarget(mc.q)
			v := m.Read(mc.proc, mc.lay.Reg(target, mc.i-1))
			mc.acc = mc.lat.Join(mc.acc, v)
			mc.q++
			if mc.optimized && mc.i == mc.lastPass() && mc.q == mc.readsPerPass() {
				// Optimized variant: the very last write is
				// unnecessary (Section 6.2); the final pass ends at
				// its last read.
				mc.finish()
			}
			return
		}
		// End of pass: write scan[P][i].
		mc.local[mc.i] = mc.acc
		m.Write(mc.proc, mc.lay.Reg(mc.proc, mc.i), mc.acc)
		if mc.i == mc.lastPass() {
			mc.finish()
			return
		}
		mc.startPass(mc.i + 1)

	default:
		panic("snapshot: corrupt phase")
	}
}

// LiteralReads is the Section 6.2 read count of one literal Scan.
func LiteralReads(n int) uint64 { return uint64(n*n + n + 1) }

// LiteralWrites is the Section 6.2 write count of one literal Scan.
func LiteralWrites(n int) uint64 { return uint64(n + 2) }

// OptimizedReads is the Section 6.2 read count of one optimized Scan.
func OptimizedReads(n int) uint64 { return uint64(n*n - 1) }

// OptimizedWrites is the Section 6.2 write count of one optimized Scan.
func OptimizedWrites(n int) uint64 { return uint64(n + 1) }
