package snapshot

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lattice"
)

func TestNativeScanBasics(t *testing.T) {
	s := New(3, lattice.MaxInt{})
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.ReadMax(0); !lattice.Equal(s.Lattice(), got, s.Lattice().Bottom()) {
		t.Errorf("empty ReadMax = %v, want bottom", got)
	}
	s.Update(0, int64(5))
	s.Update(1, int64(9))
	if got := s.ReadMax(2).(int64); got != 9 {
		t.Errorf("ReadMax = %d, want 9", got)
	}
	if got := s.Scan(2, int64(20)).(int64); got != 20 {
		t.Errorf("Scan(20) = %d, want 20 (includes own contribution)", got)
	}
}

// timestamped wraps ops with a global logical clock so the test can
// assert real-time ordering: if a's post-stamp < b's pre-stamp, a
// entirely preceded b.
type stampedResult struct {
	pre, post uint64
	val       any
}

func TestNativeConcurrentLinearizability(t *testing.T) {
	const n = 8
	const opsPer = 40
	lat := lattice.SetUnion{}
	s := New(n, lat)
	var clock atomic.Uint64
	results := make([][]stampedResult, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				var v any = lat.Bottom()
				if k%2 == 0 {
					v = lattice.NewSet(fmt.Sprintf("p%d.%d", p, k))
				}
				pre := clock.Add(1)
				r := s.Scan(p, v)
				post := clock.Add(1)
				results[p] = append(results[p], stampedResult{pre, post, r})
			}
		}(p)
	}
	wg.Wait()

	var all []stampedResult
	for _, rs := range results {
		all = append(all, rs...)
	}
	// Pairwise comparability (Lemma 32) and real-time order (Lemma 29).
	for i := range all {
		for j := range all {
			if i == j {
				continue
			}
			a, b := all[i], all[j]
			if !lattice.Comparable(lat, a.val, b.val) {
				t.Fatalf("incomparable scan results")
			}
			if a.post < b.pre && !lat.Leq(a.val, b.val) {
				t.Fatalf("real-time order violated")
			}
		}
	}
	// Per-process monotonicity.
	for p, rs := range results {
		for k := 1; k < len(rs); k++ {
			if !lat.Leq(rs[k-1].val, rs[k].val) {
				t.Fatalf("p=%d: results not monotone", p)
			}
		}
	}
	// The final ReadMax must contain every contributed key.
	final := s.ReadMax(0).(lattice.Set)
	for p := 0; p < n; p++ {
		for k := 0; k < opsPer; k += 2 {
			key := fmt.Sprintf("p%d.%d", p, k)
			if !final.Has(key) {
				t.Fatalf("final state lost key %s", key)
			}
		}
	}
}

func TestNativeValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, lattice.MaxInt{}) },
		func() { New(2, lattice.MaxInt{}).Scan(2, int64(1)) },
		func() { New(2, lattice.MaxInt{}).Scan(-1, int64(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestArraySnapshotSemantics(t *testing.T) {
	impls := map[string]func(n int) ArraySnapshot{
		"Array":         func(n int) ArraySnapshot { return NewArray(n) },
		"Lock":          func(n int) ArraySnapshot { return NewLock(n) },
		"DoubleCollect": func(n int) ArraySnapshot { return NewDoubleCollect(n) },
		"Afek":          func(n int) ArraySnapshot { return NewAfek(n) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			a := mk(3)
			if a.N() != 3 {
				t.Fatalf("N = %d", a.N())
			}
			view := a.Scan(0)
			for i, v := range view {
				if v != nil {
					t.Errorf("fresh slot %d = %v, want nil", i, v)
				}
			}
			a.Update(0, "x")
			a.Update(2, "z")
			a.Update(0, "x2") // overwrite
			view = a.Scan(1)
			if view[0] != "x2" || view[1] != nil || view[2] != "z" {
				t.Errorf("view = %v", view)
			}
		})
	}
}

// TestArrayConcurrentViews: under concurrency, every scanned view must
// be "sane": per-slot values only move forward (each writer writes
// increasing integers), and views from any one scanner are
// slot-wise monotone.
func TestArrayConcurrentViews(t *testing.T) {
	impls := map[string]func(n int) ArraySnapshot{
		"Array": func(n int) ArraySnapshot { return NewArray(n) },
		"Afek":  func(n int) ArraySnapshot { return NewAfek(n) },
		"Lock":  func(n int) ArraySnapshot { return NewLock(n) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			const writers = 3
			const scans = 200
			a := mk(writers + 1)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 1; ; i++ {
						select {
						case <-stop:
							return
						default:
							a.Update(w, i)
						}
					}
				}(w)
			}
			scanner := writers
			prev := make([]int, writers)
			for k := 0; k < scans; k++ {
				view := a.Scan(scanner)
				for w := 0; w < writers; w++ {
					if view[w] == nil {
						continue
					}
					cur := view[w].(int)
					if cur < prev[w] {
						t.Fatalf("slot %d went backwards: %d then %d", w, prev[w], cur)
					}
					prev[w] = cur
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestAfekWaitFreeUnderContention: the Afek scan terminates even while
// updates flow continuously (borrowed views), unlike DoubleCollect.
func TestAfekWaitFreeUnderContention(t *testing.T) {
	a := NewAfek(2)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				a.Update(0, i)
			}
		}
	}()
	for k := 0; k < 500; k++ {
		if view := a.Scan(1); view == nil {
			t.Fatal("Afek scan returned nil")
		}
	}
	close(stop)
	<-done
}

func TestDoubleCollectRetryBound(t *testing.T) {
	dc := NewDoubleCollect(2)
	dc.MaxRetries = 4
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				dc.Update(0, i)
			}
		}
	}()
	sawNil := false
	for k := 0; k < 2000 && !sawNil; k++ {
		if dc.Scan(1) == nil {
			sawNil = true
		}
	}
	close(stop)
	<-done
	// Under a fast writer the bounded scan should have bailed at least
	// once; if the race never materialized, the retry counter test
	// below still covers the mechanism.
	if !sawNil && dc.Retries.Load() == 0 {
		t.Skip("no contention observed on this machine; mechanism covered by sim test")
	}
}

func TestLockDoLocked(t *testing.T) {
	l := NewLock(2)
	entered := make(chan struct{})
	release := make(chan struct{})
	go l.DoLocked(func() {
		close(entered)
		<-release
	})
	<-entered
	// Another op now blocks until release — verify with a timeout-free
	// handshake: start the op, confirm it has not completed, release,
	// confirm it completes.
	opDone := make(chan struct{})
	go func() {
		l.Update(0, "v")
		close(opDone)
	}()
	select {
	case <-opDone:
		t.Fatal("Update completed while lock was held")
	default:
	}
	close(release)
	<-opDone
	if got := l.Scan(1)[0]; got != "v" {
		t.Errorf("Scan = %v", got)
	}
}
