package snapshot

import "sync"

// Lock is the conventional-synchronization baseline the paper argues
// against (Section 1): a mutex around a plain array. It is simple and
// fast in the absence of failures, but it is not wait-free — or even
// lock-free: a process that stalls inside the critical section blocks
// every other process for ever. Experiment E8 injects exactly that
// failure.
type Lock struct {
	mu    sync.Mutex
	elems []any
}

// NewLock returns an n-element lock-based snapshot.
func NewLock(n int) *Lock { return &Lock{elems: make([]any, n)} }

// Update sets process p's element under the lock.
func (l *Lock) Update(p int, v any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.elems[p] = v
}

// Scan copies the array under the lock.
func (l *Lock) Scan(p int) []any {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]any(nil), l.elems...)
}

// N returns the array length.
func (l *Lock) N() int { return len(l.elems) }

// DoLocked runs f while holding the snapshot's lock. It exists for
// failure injection: passing a blocking f models a process that is
// pre-empted, swapped out, or crashed inside its critical section —
// the precise scenario wait-freedom is defined to survive.
func (l *Lock) DoLocked(f func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f()
}
