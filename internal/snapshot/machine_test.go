package snapshot

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/pram"
	"repro/internal/sched"
)

// newSimSystem builds a system of n ScanMachines over lat, each with
// an empty script.
func newSimSystem(n int, lat lattice.Lattice, optimized bool) (*pram.System, []*ScanMachine) {
	lay := Layout{Base: 0, N: n}
	mem := pram.NewMem(lay.Regs(), n)
	lay.Install(mem, lat)
	ms := make([]*ScanMachine, n)
	pms := make([]pram.Machine, n)
	for p := 0; p < n; p++ {
		ms[p] = NewScanMachine(p, lay, lat, optimized)
		pms[p] = ms[p]
	}
	return pram.NewSystem(mem, pms), ms
}

// TestScanOperationCounts is the E5 core assertion: each Scan performs
// exactly the Section 6.2 number of reads and writes, for both
// variants, at every n, regardless of schedule position.
func TestScanOperationCounts(t *testing.T) {
	for _, optimized := range []bool{false, true} {
		for n := 1; n <= 8; n++ {
			sys, ms := newSimSystem(n, lattice.MaxInt{}, optimized)
			// Three ops per process to confirm per-op counts are
			// stable across repeated operations.
			for p := 0; p < n; p++ {
				for k := 0; k < 3; k++ {
					ms[p].Enqueue(int64(p*10 + k))
				}
			}
			for p := 0; p < n; p++ {
				for k := 0; k < 3; k++ {
					before := sys.Mem.Counters()
					for len(ms[p].Results()) == k {
						sys.Step(p)
					}
					d := sys.Mem.Counters().Sub(before)
					wantR, wantW := LiteralReads(n), LiteralWrites(n)
					if optimized {
						wantR, wantW = OptimizedReads(n), OptimizedWrites(n)
					}
					if d.Reads != wantR || d.Writes != wantW {
						t.Errorf("opt=%v n=%d p=%d op=%d: %d reads %d writes, want %d/%d",
							optimized, n, p, k, d.Reads, d.Writes, wantR, wantW)
					}
				}
			}
		}
	}
}

// TestScanCountsScheduleIndependent: interleaving other processes
// between a process's steps must not change its per-op access counts
// (the access sequence is static).
func TestScanCountsScheduleIndependent(t *testing.T) {
	n := 4
	sys, ms := newSimSystem(n, lattice.MaxInt{}, true)
	for p := 0; p < n; p++ {
		ms[p].Enqueue(int64(p))
	}
	perProc := make([]pram.Counters, n)
	base := make([]pram.Counters, n)
	for p := 0; p < n; p++ {
		base[p] = sys.Mem.Counters()
		_ = base
	}
	start := sys.Mem.Counters()
	if err := sys.Run(sched.NewRandom(11), 0); err != nil {
		t.Fatal(err)
	}
	total := sys.Mem.Counters().Sub(start)
	for p := 0; p < n; p++ {
		perProc[p] = total
		if got := total.ReadsBy[p]; got != OptimizedReads(n) {
			t.Errorf("p=%d reads %d, want %d", p, got, OptimizedReads(n))
		}
		if got := total.WritesBy[p]; got != OptimizedWrites(n) {
			t.Errorf("p=%d writes %d, want %d", p, got, OptimizedWrites(n))
		}
	}
}

// opTiming records one completed scan with its real-time interval in
// scheduler steps.
type opTiming struct {
	proc, idx  int
	start, end int
	result     any
}

// runTimed drives the system under schedule fn, recording per-op
// real-time intervals.
func runTimed(sys *pram.System, ms []*ScanMachine, s pram.Scheduler, maxSteps int) ([]opTiming, error) {
	var ops []opTiming
	n := len(ms)
	completed := make([]int, n)
	startStep := make([]int, n)
	for p := range startStep {
		startStep[p] = -1
	}
	step := 0
	for !sys.Done() {
		if maxSteps > 0 && step >= maxSteps {
			return ops, pram.ErrStepLimit
		}
		running := sys.Running()
		p := s.Next(running)
		if p == -1 {
			return ops, pram.ErrStopped
		}
		if startStep[p] == -1 {
			startStep[p] = step
		}
		sys.Step(p)
		if got := len(ms[p].Results()); got > completed[p] {
			ops = append(ops, opTiming{
				proc: p, idx: completed[p],
				start: startStep[p], end: step,
				result: ms[p].Results()[completed[p]],
			})
			completed[p] = got
			startStep[p] = -1
		}
		step++
	}
	return ops, nil
}

// TestLemma32Comparability: any two scan results are comparable in the
// lattice, under many random schedules.
func TestLemma32Comparability(t *testing.T) {
	lat := lattice.SetUnion{}
	for _, optimized := range []bool{false, true} {
		for seed := int64(0); seed < 10; seed++ {
			n := 3 + int(seed)%3
			sys, ms := newSimSystem(n, lat, optimized)
			rng := rand.New(rand.NewSource(seed))
			for p := 0; p < n; p++ {
				for k := 0; k < 4; k++ {
					if rng.Intn(2) == 0 {
						ms[p].Enqueue(lattice.NewSet(fmt.Sprintf("p%d.%d", p, k)))
					} else {
						ms[p].Enqueue(lat.Bottom()) // pure ReadMax
					}
				}
			}
			if err := sys.Run(sched.NewRandom(seed*31+7), 0); err != nil {
				t.Fatal(err)
			}
			var results []any
			for _, m := range ms {
				results = append(results, m.Results()...)
			}
			for i := range results {
				for j := i + 1; j < len(results); j++ {
					if !lattice.Comparable(lat, results[i], results[j]) {
						t.Fatalf("opt=%v seed=%d: incomparable results %v and %v",
							optimized, seed, results[i], results[j])
					}
				}
			}
		}
	}
}

// TestScanLinearizability checks the three conditions that pin down
// linearizability for the semilattice object (Theorem 33):
//  1. all results are pairwise comparable (Lemma 32);
//  2. real-time order is respected: if op a ends before op b starts,
//     result(a) ≤ result(b) (Lemma 29);
//  3. legality: each result includes everything that completed before
//     the op started, and nothing that started after it ended.
func TestScanLinearizability(t *testing.T) {
	lat := lattice.SetUnion{}
	for _, optimized := range []bool{false, true} {
		for seed := int64(0); seed < 12; seed++ {
			n := 2 + int(seed)%4
			sys, ms := newSimSystem(n, lat, optimized)
			contrib := map[string]struct{ proc, idx int }{}
			for p := 0; p < n; p++ {
				for k := 0; k < 3; k++ {
					key := fmt.Sprintf("p%d.%d", p, k)
					ms[p].Enqueue(lattice.NewSet(key))
					contrib[key] = struct{ proc, idx int }{p, k}
				}
			}
			var s pram.Scheduler
			if seed%2 == 0 {
				s = sched.NewRandom(seed)
			} else {
				s = sched.NewBursty(seed, 5)
			}
			ops, err := runTimed(sys, ms, s, 0)
			if err != nil {
				t.Fatal(err)
			}
			when := map[string]opTiming{}
			for _, op := range ops {
				for key, c := range contrib {
					if c.proc == op.proc && c.idx == op.idx {
						when[key] = op
					}
				}
			}
			for _, a := range ops {
				ra := a.result.(lattice.Set)
				for _, b := range ops {
					if a.end < b.start {
						if !lat.Leq(a.result, b.result) {
							t.Fatalf("opt=%v seed=%d: real-time order violated: %v then %v",
								optimized, seed, a.result, b.result)
						}
					}
				}
				// Legality: key visibility versus the writing op's
				// interval.
				for key, w := range when {
					if w.end < a.start && !ra.Has(key) {
						t.Fatalf("opt=%v seed=%d: scan missed %q written before it started",
							optimized, seed, key)
					}
					if w.start > a.end && ra.Has(key) {
						t.Fatalf("opt=%v seed=%d: scan saw %q written after it ended",
							optimized, seed, key)
					}
				}
			}
		}
	}
}

// TestScanMonotonePerProcess: successive scans by one process return
// non-decreasing values (Lemma 28), and each scan's result includes
// the value it contributed.
func TestScanMonotonePerProcess(t *testing.T) {
	lat := lattice.MaxInt{}
	sys, ms := newSimSystem(3, lat, true)
	for p := 0; p < 3; p++ {
		for k := 0; k < 5; k++ {
			ms[p].Enqueue(int64(p*100 + k))
		}
	}
	if err := sys.Run(sched.NewRandom(3), 0); err != nil {
		t.Fatal(err)
	}
	for p, m := range ms {
		rs := m.Results()
		for k := 1; k < len(rs); k++ {
			if !lat.Leq(rs[k-1], rs[k]) {
				t.Errorf("p=%d: result %d (%v) > result %d (%v)", p, k-1, rs[k-1], k, rs[k])
			}
		}
		for k, r := range rs {
			if !lat.Leq(int64(p*100+k), r) {
				t.Errorf("p=%d op %d: result %v misses own contribution", p, k, r)
			}
		}
	}
}

// TestScanWaitFreeUnderCrash: crashed peers never block a scanner.
func TestScanWaitFreeUnderCrash(t *testing.T) {
	n := 4
	sys, ms := newSimSystem(n, lattice.MaxInt{}, true)
	for p := 0; p < n; p++ {
		ms[p].Enqueue(int64(p + 1))
	}
	// Processes 1..3 crash immediately; process 0 must still finish in
	// its bounded number of steps.
	crashed := sched.Func(func(running []int) int {
		for _, p := range running {
			if p == 0 {
				return p
			}
		}
		return -1
	})
	err := sys.Run(crashed, 0)
	if err != pram.ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped once only crashed procs remain", err)
	}
	if !ms[0].Done() {
		t.Fatal("scanner did not finish despite taking all its steps")
	}
	if got := ms[0].Results()[0].(int64); got != 1 {
		t.Errorf("result = %d, want own value 1 (crashed peers never wrote)", got)
	}
}

// TestScanDeterminism: identical seeds give identical runs.
func TestScanDeterminism(t *testing.T) {
	run := func() []any {
		sys, ms := newSimSystem(3, lattice.MaxInt{}, false)
		for p := 0; p < 3; p++ {
			ms[p].Enqueue(int64(p * 7))
			ms[p].Enqueue(int64(p*7 + 1))
		}
		if err := sys.Run(sched.NewRandom(5), 0); err != nil {
			panic(err)
		}
		var out []any
		for _, m := range ms {
			out = append(out, m.Results()...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestScanMachineCloneIsolation(t *testing.T) {
	sys, ms := newSimSystem(2, lattice.MaxInt{}, true)
	ms[0].Enqueue(int64(5))
	ms[1].Enqueue(int64(9))
	sys.Step(0)
	cl := sys.Clone()
	if err := cl.RunSolo(0, 0); err != nil {
		t.Fatal(err)
	}
	if ms[0].Done() {
		t.Error("running the clone finished the original's machine")
	}
	clm := cl.Machines[0].(*ScanMachine)
	if got := clm.Results()[0].(int64); got != 5 {
		t.Errorf("clone result = %d, want 5", got)
	}
}

func TestLayoutValidation(t *testing.T) {
	lay := Layout{Base: 0, N: 2}
	if lay.Regs() != 8 {
		t.Errorf("Regs = %d, want 8", lay.Regs())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for slot out of range")
		}
	}()
	lay.Reg(0, 4)
}

func TestNewScanMachineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad process index")
		}
	}()
	NewScanMachine(5, Layout{N: 2}, lattice.MaxInt{}, true)
}

func TestStepAfterDonePanics(t *testing.T) {
	sys, ms := newSimSystem(1, lattice.MaxInt{}, true)
	ms[0].Enqueue(int64(1))
	if err := sys.RunSolo(0, 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ms[0].Step(sys.Mem)
}

// TestCountFormulas pins the closed forms themselves.
func TestCountFormulas(t *testing.T) {
	cases := []struct {
		n               int
		lr, lw, or2, ow uint64
	}{
		{1, 3, 3, 0, 2},
		{2, 7, 4, 3, 3},
		{4, 21, 6, 15, 5},
		{8, 73, 10, 63, 9},
	}
	for _, c := range cases {
		if LiteralReads(c.n) != c.lr || LiteralWrites(c.n) != c.lw {
			t.Errorf("n=%d literal = %d/%d, want %d/%d",
				c.n, LiteralReads(c.n), LiteralWrites(c.n), c.lr, c.lw)
		}
		if OptimizedReads(c.n) != c.or2 || OptimizedWrites(c.n) != c.ow {
			t.Errorf("n=%d optimized = %d/%d, want %d/%d",
				c.n, OptimizedReads(c.n), OptimizedWrites(c.n), c.or2, c.ow)
		}
	}
}
