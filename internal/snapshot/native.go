package snapshot

import (
	"fmt"
	"sync/atomic"

	"repro/apram/obs"
	"repro/internal/lattice"
)

// box wraps a lattice element so registers can hold values of any
// concrete type behind an atomic pointer.
type box struct{ v any }

// Snapshot is the native (goroutine-ready) atomic scan object over an
// arbitrary ∨-semilattice, using the Section 6.2 optimized loop.
//
// Each process index owns its row of registers and its local-copy
// state, so a given index must be used by at most one goroutine at a
// time; distinct indices may run fully concurrently. Every operation
// is wait-free: exactly n+1 writes and n²−1 reads of atomic registers,
// regardless of what other goroutines do.
type Snapshot struct {
	lat   lattice.Lattice
	ip    lattice.InPlace // non-nil when lat supports in-place joins
	n     int
	cells [][]atomic.Pointer[box] // cells[p][i] = scan[p][i]
	local [][]any                 // local[p][i], owned by process p

	probe   obs.Probe // nil when uninstrumented (the fast path)
	emitOps bool      // report OpScan completions (false when nested)
}

// New returns an n-process snapshot object over lat.
func New(n int, lat lattice.Lattice) *Snapshot {
	if n <= 0 {
		panic("snapshot: need at least one process")
	}
	s := &Snapshot{
		lat:   lat,
		n:     n,
		cells: make([][]atomic.Pointer[box], n),
		local: make([][]any, n),
	}
	if ip, ok := lat.(lattice.InPlace); ok {
		s.ip = ip
	}
	bot := &box{lat.Bottom()}
	for p := 0; p < n; p++ {
		s.cells[p] = make([]atomic.Pointer[box], n+2)
		s.local[p] = make([]any, n+2)
		for i := 0; i <= n+1; i++ {
			s.cells[p][i].Store(bot)
			s.local[p][i] = bot.v
		}
	}
	return s
}

// N returns the number of process slots.
func (s *Snapshot) N() int { return s.n }

// Instrument attaches a probe. With emitOps set, every Scan (and so
// Update/ReadMax) reports an obs.OpScan completion; objects that embed
// a snapshot pass false so register counts flow to the probe while
// operation attribution stays with the outer object. Attach before the
// object is shared between goroutines; probes must be wait-free (see
// package obs).
func (s *Snapshot) Instrument(p obs.Probe, emitOps bool) {
	s.probe = p
	s.emitOps = emitOps && p != nil
}

// Lattice returns the lattice the snapshot operates over.
func (s *Snapshot) Lattice() lattice.Lattice { return s.lat }

// Scan joins v into the shared state and returns the join of all
// values written so far (Figure 5). It is linearizable (Theorem 33)
// and wait-free. Use Bottom for v to read without contributing.
func (s *Snapshot) Scan(p int, v any) any {
	s.check(p)
	if s.emitOps {
		obs.Begin(s.probe, p, obs.OpScan)
	}
	local := s.local[p]
	// reads and writes count the atomic register accesses actually
	// performed, at their callsites — Section 6.2 predicts exactly
	// n²−1 and n+1 per Scan, and the probe reports what happened, not
	// the formula. Plain locals: free when no probe is attached.
	reads, writes := 0, 0
	// scan[P][0] := v ∨ scan[P][0], self-read elided via local copy.
	local[0] = s.lat.Join(v, local[0])
	s.cells[p][0].Store(&box{local[0]})
	writes++
	for i := 1; i <= s.n+1; i++ {
		var acc any
		if s.ip != nil {
			// In-place fast path: one allocation per pass instead of
			// one per join (ablated in BenchmarkScanJoinAblation).
			a := s.ip.NewAccum(local[i])
			a = s.ip.Accumulate(a, local[i-1])
			for q := 0; q < s.n; q++ {
				if q == p {
					continue
				}
				a = s.ip.Accumulate(a, s.cells[q][i-1].Load().v)
				reads++
			}
			acc = s.ip.Freeze(a)
		} else {
			acc = s.lat.Join(local[i], local[i-1])
			for q := 0; q < s.n; q++ {
				if q == p {
					continue
				}
				acc = s.lat.Join(acc, s.cells[q][i-1].Load().v)
				reads++
			}
		}
		local[i] = acc
		if i <= s.n {
			// The final write (to scan[P][n+1]) is unnecessary.
			s.cells[p][i].Store(&box{acc})
			writes++
		}
	}
	if s.probe != nil {
		s.probe.RegReads(p, reads)
		s.probe.RegWrites(p, writes)
		if s.emitOps {
			s.probe.OpDone(p, obs.OpScan)
		}
	}
	return local[s.n+1]
}

// Update is the Write_L operation: join v into the shared state,
// discarding the scan result.
func (s *Snapshot) Update(p int, v any) { s.Scan(p, v) }

// ReadMax returns the join of all values written by Update and Scan
// operations linearized before it.
func (s *Snapshot) ReadMax(p int) any { return s.Scan(p, s.lat.Bottom()) }

// PeekRow0 returns process q's own row-0 register — the join of
// everything q has contributed, stored as the FIRST write of q's every
// Scan/Update. Unlike Scan it needs no slot: it is a single atomic
// load, safe from any goroutine, and it mutates no local-copy state.
// Observers (the sharded construction's snapshot validator) use it to
// detect publications: q's row-0 value changes before q's update is
// visible to any scan, and any scan whose first row of reads starts
// after the load sees at least this value.
//
// The load is NOT reported to the probe: callers are outside the
// per-slot accounting discipline (they own no slot), so they must
// account for their own accesses.
func (s *Snapshot) PeekRow0(q int) any {
	s.check(q)
	return s.cells[q][0].Load().v
}

func (s *Snapshot) check(p int) {
	if p < 0 || p >= s.n {
		panic(fmt.Sprintf("snapshot: process %d out of range [0,%d)", p, s.n))
	}
}
