package snapshot

import (
	"sync/atomic"

	"repro/apram/obs"
	"repro/internal/lattice"
)

// ArraySnapshot is the classic atomic-snapshot abstraction: an
// n-element array in which process p writes element p, with a Scan
// that returns an instantaneous view of the whole array. All four
// implementations in this package (Array, Lock, DoubleCollect, Afek)
// satisfy it, which is what makes the Section 2 comparison benchmarks
// apples-to-apples.
//
// As everywhere in this repository, a process index must be used by at
// most one goroutine at a time.
type ArraySnapshot interface {
	// Update sets process p's element to v.
	Update(p int, v any)
	// Scan returns an instantaneous view of the array; element q is
	// nil if process q has never written.
	Scan(p int) []any
	// N returns the array length.
	N() int
}

// Array is the paper's own array snapshot, built at the end of
// Section 6: the semilattice scan over the tagged-vector lattice,
// where process p publishes element p by contributing a single-cell
// vector with a fresh tag.
type Array struct {
	snap *Snapshot
	vl   lattice.Vector
	tag  []uint64 // per-process tag counter, owned by that process
}

// NewArray returns an n-element atomic array snapshot backed by the
// wait-free semilattice scan.
func NewArray(n int) *Array {
	vl := lattice.Vector{N: n}
	return &Array{snap: New(n, vl), vl: vl, tag: make([]uint64, n)}
}

// Instrument attaches a probe (see Snapshot.Instrument).
func (a *Array) Instrument(p obs.Probe, emitOps bool) { a.snap.Instrument(p, emitOps) }

// Update publishes v as process p's element.
func (a *Array) Update(p int, v any) {
	a.tag[p]++
	a.snap.Scan(p, a.vl.Single(p, a.tag[p], v))
}

// Scan returns an instantaneous view of the array.
func (a *Array) Scan(p int) []any {
	vec := a.snap.ReadMax(p).(lattice.Vec)
	return vecValues(vec)
}

// N returns the array length.
func (a *Array) N() int { return a.snap.N() }

func vecValues(vec lattice.Vec) []any {
	out := make([]any, len(vec))
	for i, c := range vec {
		if c.Tag != 0 {
			out[i] = c.Val
		}
	}
	return out
}

// dcCell is one process's register in the double-collect and Afek
// snapshots: a payload with a per-process sequence number, plus (for
// Afek) the view embedded at update time.
type dcCell struct {
	seq  uint64
	val  any
	view []any // Afek only
}

// DoubleCollect is the textbook "collect twice, retry until clean"
// snapshot. A clean double collect is linearizable, and updates are a
// single register write — but Scan is only LOCK-FREE, not wait-free:
// a continuously updating peer can starve it for ever. The simulator
// variant (DCScanMachine) demonstrates that starvation schedule
// deterministically; this native variant exposes a retry counter so
// benchmarks can show unbounded retries under contention.
type DoubleCollect struct {
	cells []atomic.Pointer[dcCell]
	// Retries counts collect-pair retries across all Scan calls.
	Retries atomic.Uint64
	// MaxRetries, when positive, bounds the retries of a single Scan;
	// exceeding it makes Scan return nil, which keeps benchmarks
	// finite. Zero means retry for ever (the true algorithm).
	MaxRetries uint64

	probe   obs.Probe
	emitOps bool
}

// NewDoubleCollect returns an n-element double-collect snapshot.
func NewDoubleCollect(n int) *DoubleCollect {
	dc := &DoubleCollect{cells: make([]atomic.Pointer[dcCell], n)}
	zero := &dcCell{}
	for i := range dc.cells {
		dc.cells[i].Store(zero)
	}
	return dc
}

// Instrument attaches a probe. Retries surface as obs.EvRetry events —
// the telemetry that distinguishes this merely lock-free Scan from the
// wait-free ones.
func (dc *DoubleCollect) Instrument(p obs.Probe, emitOps bool) {
	dc.probe = p
	dc.emitOps = emitOps && p != nil
}

// Update sets process p's element to v.
func (dc *DoubleCollect) Update(p int, v any) {
	if dc.emitOps {
		obs.Begin(dc.probe, p, obs.OpScan)
	}
	old := dc.cells[p].Load()
	dc.cells[p].Store(&dcCell{seq: old.seq + 1, val: v})
	if dc.probe != nil {
		dc.probe.RegReads(p, 1)
		dc.probe.RegWrites(p, 1)
		if dc.emitOps {
			dc.probe.OpDone(p, obs.OpScan)
		}
	}
}

// Scan retries double collects until two consecutive collects agree.
// It returns nil if MaxRetries is positive and exceeded.
func (dc *DoubleCollect) Scan(p int) []any {
	if dc.emitOps {
		obs.Begin(dc.probe, p, obs.OpScan)
	}
	done := func(reads int, out []any) []any {
		if dc.probe != nil {
			dc.probe.RegReads(p, reads)
			if dc.emitOps {
				dc.probe.OpDone(p, obs.OpScan)
			}
		}
		return out
	}
	a := dc.collect()
	reads := len(dc.cells)
	for tries := uint64(0); ; tries++ {
		b := dc.collect()
		reads += len(dc.cells)
		if sameSeqs(a, b) {
			return done(reads, cellValues(b))
		}
		dc.Retries.Add(1)
		if dc.probe != nil {
			dc.probe.Event(p, obs.EvRetry)
		}
		if dc.MaxRetries > 0 && tries >= dc.MaxRetries {
			return done(reads, nil)
		}
		a = b
	}
}

// N returns the array length.
func (dc *DoubleCollect) N() int { return len(dc.cells) }

func (dc *DoubleCollect) collect() []*dcCell {
	out := make([]*dcCell, len(dc.cells))
	for i := range dc.cells {
		out[i] = dc.cells[i].Load()
	}
	return out
}

func sameSeqs(a, b []*dcCell) bool {
	for i := range a {
		if a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

func cellValues(cs []*dcCell) []any {
	out := make([]any, len(cs))
	for i, c := range cs {
		if c.seq != 0 {
			out[i] = c.val
		}
	}
	return out
}

// Afek is the single-writer atomic snapshot of Afek, Attiya, Dolev,
// Gafni, Merritt and Shavit (cited in Section 2 as the independent
// contemporaneous construction "with time complexity comparable to
// ours"), in its unbounded-sequence-number form: an updater embeds a
// scan in its own register, and a scanner that sees the same process
// move twice borrows that embedded view instead of retrying for ever —
// which is what makes it wait-free, unlike DoubleCollect.
type Afek struct {
	cells []atomic.Pointer[dcCell]

	probe   obs.Probe
	emitOps bool
}

// NewAfek returns an n-element Afek et al. snapshot.
func NewAfek(n int) *Afek {
	a := &Afek{cells: make([]atomic.Pointer[dcCell], n)}
	zero := &dcCell{}
	for i := range a.cells {
		a.cells[i].Store(zero)
	}
	return a
}

// Instrument attaches a probe. A scanner borrowing an updater's
// embedded view surfaces as obs.EvHelp — the helping step that makes
// this snapshot wait-free where DoubleCollect is not.
func (a *Afek) Instrument(p obs.Probe, emitOps bool) {
	a.probe = p
	a.emitOps = emitOps && p != nil
}

// Update embeds a scan in the written register, making the write
// expensive but scans wait-free.
func (a *Afek) Update(p int, v any) {
	if a.emitOps {
		obs.Begin(a.probe, p, obs.OpScan)
	}
	view := a.scan(p)
	old := a.cells[p].Load()
	a.cells[p].Store(&dcCell{seq: old.seq + 1, val: v, view: view})
	if a.probe != nil {
		a.probe.RegReads(p, 1)
		a.probe.RegWrites(p, 1)
		if a.emitOps {
			a.probe.OpDone(p, obs.OpScan)
		}
	}
}

// Scan returns an instantaneous view: either a clean double collect,
// or the view embedded by a process observed to move twice.
func (a *Afek) Scan(p int) []any {
	if a.emitOps {
		obs.Begin(a.probe, p, obs.OpScan)
	}
	out := a.scan(p)
	if a.probe != nil && a.emitOps {
		a.probe.OpDone(p, obs.OpScan)
	}
	return out
}

// scan is Scan without the operation report, shared with Update (whose
// embedded scan is part of the update, not an operation of its own).
func (a *Afek) scan(p int) []any {
	moved := make(map[int]bool)
	prev := a.collect()
	reads := len(a.cells)
	done := func(out []any) []any {
		if a.probe != nil {
			a.probe.RegReads(p, reads)
		}
		return out
	}
	for {
		cur := a.collect()
		reads += len(a.cells)
		clean := true
		for q := range cur {
			if cur[q].seq == prev[q].seq {
				continue
			}
			clean = false
			if moved[q] {
				// q completed an entire Update inside this Scan, so
				// its embedded view was taken inside this Scan too.
				if a.probe != nil {
					a.probe.Event(p, obs.EvHelp)
				}
				return done(append([]any(nil), cur[q].view...))
			}
			moved[q] = true
		}
		if clean {
			return done(cellValues(cur))
		}
		if a.probe != nil {
			a.probe.Event(p, obs.EvRetry)
		}
		prev = cur
	}
}

// N returns the array length.
func (a *Afek) N() int { return len(a.cells) }

func (a *Afek) collect() []*dcCell {
	out := make([]*dcCell, len(a.cells))
	for i := range a.cells {
		out[i] = a.cells[i].Load()
	}
	return out
}
