package snapshot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/sched"
)

// TestQuickComparabilityNative: for random operation mixes on the
// native snapshot, all scan results are pairwise comparable and
// per-process monotone (Lemmas 32, 28) — run single-threaded over
// random slots, which still exercises arbitrary cross-slot histories.
func TestQuickComparabilityNative(t *testing.T) {
	lat := lattice.MapMax{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := New(n, lat)
		prev := make([]any, n)
		for p := range prev {
			prev[p] = lat.Bottom()
		}
		var results []any
		for op := 0; op < 20; op++ {
			p := rng.Intn(n)
			var v any = lat.Bottom()
			if rng.Intn(2) == 0 {
				v = lattice.IntMap{string(rune('a' + rng.Intn(4))): int64(rng.Intn(50))}
			}
			r := s.Scan(p, v)
			if !lat.Leq(prev[p], r) {
				return false // per-process monotonicity broken
			}
			if !lat.Leq(v, r) {
				return false // own contribution missing
			}
			prev[p] = r
			results = append(results, r)
		}
		for i := range results {
			for j := i + 1; j < len(results); j++ {
				if !lattice.Comparable(lat, results[i], results[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickSimEquivalence: a simulated literal scan, a simulated
// optimized scan, and the native scan must all return the same value
// for the same sequential operation sequence.
func TestQuickSimEquivalence(t *testing.T) {
	lat := lattice.MaxInt{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		type op struct {
			p int
			v int64
		}
		ops := make([]op, 1+rng.Intn(10))
		for i := range ops {
			ops[i] = op{p: rng.Intn(n), v: int64(rng.Intn(1000))}
		}

		runSim := func(optimized bool) []any {
			sys, ms := newSimSystem(n, lat, optimized)
			var out []any
			for _, o := range ops {
				ms[o.p].Enqueue(o.v)
				for k := len(ms[o.p].Results()); len(ms[o.p].Results()) == k; {
					sys.Step(o.p)
				}
				rs := ms[o.p].Results()
				out = append(out, rs[len(rs)-1])
			}
			return out
		}
		lit := runSim(false)
		opt := runSim(true)

		nat := New(n, lat)
		var natOut []any
		for _, o := range ops {
			natOut = append(natOut, nat.Scan(o.p, o.v))
		}
		for i := range ops {
			if lit[i] != opt[i] || opt[i] != natOut[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickArrayAgainstReference: random sequential update/scan
// programs over the four array-snapshot implementations must agree
// with a plain-array reference (sequential executions leave no room
// for legal divergence).
func TestQuickArrayAgainstReference(t *testing.T) {
	impls := map[string]func(n int) ArraySnapshot{
		"Array":         func(n int) ArraySnapshot { return NewArray(n) },
		"Afek":          func(n int) ArraySnapshot { return NewAfek(n) },
		"DoubleCollect": func(n int) ArraySnapshot { return NewDoubleCollect(n) },
		"Lock":          func(n int) ArraySnapshot { return NewLock(n) },
	}
	for name, mk := range impls {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(5)
				a := mk(n)
				ref := make([]any, n)
				for op := 0; op < 25; op++ {
					p := rng.Intn(n)
					if rng.Intn(2) == 0 {
						v := rng.Intn(100)
						a.Update(p, v)
						ref[p] = v
					} else {
						got := a.Scan(p)
						for i := range ref {
							if got[i] != ref[i] {
								return false
							}
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestQuickSimWaitFreeStepCount: under arbitrary random schedules, a
// scan completes after exactly its fixed number of own steps — the
// operational meaning of the bounded wait-free property.
func TestQuickSimWaitFreeStepCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		sys, ms := newSimSystem(n, lattice.MaxInt{}, true)
		for p := 0; p < n; p++ {
			ms[p].Enqueue(int64(p))
		}
		if err := sys.Run(sched.NewRandom(seed), 0); err != nil {
			return false
		}
		want := OptimizedReads(n) + OptimizedWrites(n)
		for p := 0; p < n; p++ {
			if sys.Mem.Counters().AccessesBy(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
