package snapshot

import (
	"errors"
	"testing"

	"repro/internal/pram"
	"repro/internal/sched"
)

// dcSystem builds: process 0 = scanner, process 1 = updater with the
// given script length.
func dcSystem(updates int) (*pram.System, *DCScanMachine, *DCUpdateMachine) {
	lay := DCLayout{Base: 0, N: 2}
	mem := pram.NewMem(2, 2)
	lay.Install(mem)
	script := make([]any, updates)
	for i := range script {
		script[i] = i
	}
	scanner := NewDCScanMachine(0, lay)
	updater := NewDCUpdateMachine(1, lay, script)
	sys := pram.NewSystem(mem, []pram.Machine{scanner, updater})
	return sys, scanner, updater
}

// TestDoubleCollectStarvation is the deterministic non-wait-freedom
// demonstration: an adversary that slips one update between every two
// collects keeps the scanner running for as long as the updater has
// steps — the scanner's work is unbounded in the adversary's budget,
// which is exactly why double-collect fails Theorem 8's bar while the
// Figure 5 scan does not.
func TestDoubleCollectStarvation(t *testing.T) {
	const updates = 500
	sys, scanner, _ := dcSystem(updates)
	// Adversary: let the scanner do one full collect (2 reads), then
	// one update write, for ever.
	phase := 0
	adv := sched.Func(func(running []int) int {
		if len(running) == 1 {
			return running[0]
		}
		// 2 scanner steps, then 1 updater step, repeating.
		p := 0
		if phase == 2 {
			p = 1
		}
		phase = (phase + 1) % 3
		return p
	})
	if err := sys.Run(adv, 0); err != nil {
		t.Fatal(err)
	}
	if scanner.Retries() < updates-2 {
		t.Errorf("scanner retried %d times; adversary should force ~%d", scanner.Retries(), updates)
	}
	if !scanner.Done() {
		t.Error("scanner should finish once the updater's script ends")
	}
}

// TestDoubleCollectStarvationUnbounded: with an endless updater, the
// scanner exceeds any step limit.
func TestDoubleCollectStarvationUnbounded(t *testing.T) {
	sys, scanner, _ := dcSystem(100_000)
	phase := 0
	adv := sched.Func(func(running []int) int {
		if len(running) == 1 {
			return running[0]
		}
		p := 0
		if phase == 2 {
			p = 1
		}
		phase = (phase + 1) % 3
		return p
	})
	err := sys.Run(adv, 30_000)
	if !errors.Is(err, pram.ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit (scan starved)", err)
	}
	if scanner.Done() {
		t.Error("scanner should still be starving")
	}
}

// TestDoubleCollectCleanRun: without interference the scan finishes in
// exactly two collects.
func TestDoubleCollectCleanRun(t *testing.T) {
	sys, scanner, updater := dcSystem(3)
	if err := sys.RunSolo(1, 0); err != nil { // updater finishes first
		t.Fatal(err)
	}
	if !updater.Done() {
		t.Fatal("updater not done")
	}
	before := sys.Mem.Counters()
	if err := sys.RunSolo(0, 0); err != nil {
		t.Fatal(err)
	}
	d := sys.Mem.Counters().Sub(before)
	if d.Reads != 4 { // two collects of two cells
		t.Errorf("clean scan used %d reads, want 4", d.Reads)
	}
	if scanner.Retries() != 0 {
		t.Errorf("clean scan retried %d times", scanner.Retries())
	}
	view := scanner.Result()
	if view[1] != 2 || view[0] != nil {
		t.Errorf("view = %v, want [nil 2]", view)
	}
}

func TestDCScanMachineCloneIsolation(t *testing.T) {
	sys, scanner, _ := dcSystem(2)
	sys.Step(0)
	cl := scanner.Clone().(*DCScanMachine)
	sys.Step(0)
	if cl.i == scanner.i {
		t.Error("clone shares scan cursor with original")
	}
}

func TestDCMachinePanics(t *testing.T) {
	sys, scanner, updater := dcSystem(1)
	if err := sys.RunSolo(1, 0); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("updater Step after Done should panic")
			}
		}()
		updater.Step(sys.Mem)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Result before Done should panic")
			}
		}()
		scanner.Result()
	}()
}
