package snapshot

import "repro/internal/pram"

// Simulator machines for the Afek et al. snapshot, completing the E7
// comparison: under the same update-between-collects adversary that
// starves the double-collect scan for ever, the Afek scan finishes in
// a bounded number of its own steps — after observing some process
// move twice it borrows that process's embedded view. This is the
// related-work algorithm's wait-freedom made measurable next to ours.

// afekSimCell is the simulated register contents: a sequence number,
// the payload, and the view embedded at update time.
type afekSimCell struct {
	Seq  uint64
	Val  any
	View []any
}

// AfekLayout places n cells in simulated memory.
type AfekLayout struct {
	Base int
	N    int
}

// Reg returns process p's cell register.
func (l AfekLayout) Reg(p int) int { return l.Base + p }

// Install initializes the cells and assigns owners.
func (l AfekLayout) Install(m pram.Memory) {
	for p := 0; p < l.N; p++ {
		m.Init(l.Reg(p), afekSimCell{})
		m.SetOwner(l.Reg(p), p)
	}
}

// AfekScanMachine performs one Afek scan: repeated collects, one cell
// read per Step, borrowing an embedded view from any process observed
// to move twice.
type AfekScanMachine struct {
	proc int
	lay  AfekLayout

	prev    []afekSimCell
	cur     []afekSimCell
	i       int
	moved   map[int]bool
	done    bool
	result  []any
	borrows int
}

// NewAfekScanMachine returns a scanner for process proc.
func NewAfekScanMachine(proc int, lay AfekLayout) *AfekScanMachine {
	return &AfekScanMachine{
		proc: proc, lay: lay,
		cur:   make([]afekSimCell, lay.N),
		moved: map[int]bool{},
	}
}

// Done reports completion.
func (mc *AfekScanMachine) Done() bool { return mc.done }

// Result returns the scanned view; it panics before Done.
func (mc *AfekScanMachine) Result() []any {
	if !mc.done {
		panic("snapshot: Result before Done")
	}
	return mc.result
}

// Borrowed reports whether the result came from an embedded view.
func (mc *AfekScanMachine) Borrowed() bool { return mc.borrows > 0 && mc.done }

// Clone returns an independent copy.
func (mc *AfekScanMachine) Clone() pram.Machine {
	cp := *mc
	cp.prev = append([]afekSimCell(nil), mc.prev...)
	cp.cur = append([]afekSimCell(nil), mc.cur...)
	cp.result = append([]any(nil), mc.result...)
	cp.moved = make(map[int]bool, len(mc.moved))
	for k, v := range mc.moved {
		cp.moved[k] = v
	}
	return &cp
}

// Step reads the next cell of the current collect and resolves the
// scan at collect boundaries.
func (mc *AfekScanMachine) Step(m pram.Memory) {
	if mc.done {
		panic("snapshot: Step after Done")
	}
	mc.cur[mc.i] = m.Read(mc.proc, mc.lay.Reg(mc.i)).(afekSimCell)
	mc.i++
	if mc.i < mc.lay.N {
		return
	}
	mc.i = 0
	if mc.prev == nil {
		mc.prev = append(mc.prev[:0], mc.cur...)
		return
	}
	clean := true
	for q := range mc.cur {
		if mc.cur[q].Seq == mc.prev[q].Seq {
			continue
		}
		clean = false
		if mc.moved[q] {
			// q completed a whole update inside this scan: borrow its
			// embedded view.
			mc.result = append([]any(nil), mc.cur[q].View...)
			mc.borrows++
			mc.done = true
			return
		}
		mc.moved[q] = true
	}
	if clean {
		mc.result = make([]any, mc.lay.N)
		for q, c := range mc.cur {
			if c.Seq != 0 {
				mc.result[q] = c.Val
			}
		}
		mc.done = true
		return
	}
	mc.prev = append(mc.prev[:0], mc.cur...)
}

// AfekUpdateMachine performs a script of updates, each an embedded
// scan followed by one write.
type AfekUpdateMachine struct {
	proc   int
	lay    AfekLayout
	script []any

	next    int
	seq     uint64
	scanner *AfekScanMachine // non-nil while the embedded scan runs
	pending any
}

// NewAfekUpdateMachine returns an updater for process proc.
func NewAfekUpdateMachine(proc int, lay AfekLayout, script []any) *AfekUpdateMachine {
	return &AfekUpdateMachine{proc: proc, lay: lay, script: append([]any(nil), script...)}
}

// Done reports whether the script is exhausted.
func (mc *AfekUpdateMachine) Done() bool {
	return mc.next == len(mc.script) && mc.scanner == nil
}

// Completed returns finished updates.
func (mc *AfekUpdateMachine) Completed() int {
	if mc.scanner != nil {
		return mc.next - 1
	}
	return mc.next
}

// Clone returns an independent copy.
func (mc *AfekUpdateMachine) Clone() pram.Machine {
	cp := *mc
	cp.script = append([]any(nil), mc.script...)
	if mc.scanner != nil {
		cp.scanner = mc.scanner.Clone().(*AfekScanMachine)
	}
	return &cp
}

// Step advances the embedded scan or performs the final write.
func (mc *AfekUpdateMachine) Step(m pram.Memory) {
	if mc.Done() {
		panic("snapshot: Step after Done")
	}
	if mc.scanner == nil {
		mc.pending = mc.script[mc.next]
		mc.next++
		mc.scanner = NewAfekScanMachine(mc.proc, mc.lay)
		// fall through into the scan's first step
	}
	if !mc.scanner.Done() {
		mc.scanner.Step(m)
		if !mc.scanner.Done() {
			return
		}
		return // the write happens on the next step
	}
	mc.seq++
	m.Write(mc.proc, mc.lay.Reg(mc.proc), afekSimCell{
		Seq: mc.seq, Val: mc.pending, View: mc.scanner.Result(),
	})
	mc.scanner = nil
}
