package snapshot

import (
	"testing"

	"repro/internal/pram"
	"repro/internal/sched"
)

func afekSystem(updates int) (*pram.System, *AfekScanMachine, *AfekUpdateMachine) {
	lay := AfekLayout{Base: 0, N: 2}
	mem := pram.NewMem(2, 2)
	lay.Install(mem)
	script := make([]any, updates)
	for i := range script {
		script[i] = i
	}
	scanner := NewAfekScanMachine(0, lay)
	updater := NewAfekUpdateMachine(1, lay, script)
	return pram.NewSystem(mem, []pram.Machine{scanner, updater}), scanner, updater
}

// TestAfekSimBoundedUnderAdversary is the wait-freedom contrast with
// double-collect: under the same update-between-collects adversary
// that starves DCScanMachine for ever, the Afek scan terminates after
// a bounded number of its own steps by borrowing an embedded view.
func TestAfekSimBoundedUnderAdversary(t *testing.T) {
	sys, scanner, _ := afekSystem(100_000)
	phase := 0
	adv := sched.Func(func(running []int) int {
		if len(running) == 1 {
			return running[0]
		}
		// Two scanner steps, then updater steps until it completes one
		// whole update (scan 2×2 reads + 1 write when clean), looping.
		p := 0
		if phase >= 2 {
			p = 1
		}
		phase = (phase + 1) % 8
		return p
	})
	for !scanner.Done() {
		p := adv.Next(sys.Running())
		sys.Step(p)
		if sys.Steps[0] > 100 {
			t.Fatalf("Afek scan not bounded: %d steps and counting", sys.Steps[0])
		}
	}
	if scanner.Result() == nil {
		t.Fatal("nil result")
	}
	t.Logf("scan finished in %d steps (borrowed=%v)", sys.Steps[0], scanner.Borrowed())
}

// TestAfekSimCleanScan: with no interference, two clean collects.
func TestAfekSimCleanScan(t *testing.T) {
	sys, scanner, updater := afekSystem(2)
	if err := sys.RunSolo(1, 0); err != nil {
		t.Fatal(err)
	}
	if !updater.Done() {
		t.Fatal("updater unfinished")
	}
	before := sys.Mem.Counters()
	if err := sys.RunSolo(0, 0); err != nil {
		t.Fatal(err)
	}
	d := sys.Mem.Counters().Sub(before)
	if d.Reads != 4 { // two collects of two cells
		t.Errorf("clean Afek scan used %d reads, want 4", d.Reads)
	}
	view := scanner.Result()
	if view[1] != 1 || view[0] != nil {
		t.Errorf("view = %v, want [nil 1]", view)
	}
}

// TestAfekSimExhaustive: every schedule of one scan racing one update
// yields a legal view — either the pre-update or post-update array —
// and the scanner always terminates.
func TestAfekSimExhaustive(t *testing.T) {
	sys, _, _ := afekSystem(1)
	leaves, err := pram.Explore(sys, 5_000_000, func(final *pram.System) {
		view := final.Machines[0].(*AfekScanMachine).Result()
		switch {
		case view[0] == nil && view[1] == nil: // before the update
		case view[0] == nil && view[1] == 0: // after the update
		default:
			t.Fatalf("illegal view %v", view)
		}
	})
	if err != nil {
		t.Fatalf("%v after %d leaves", err, leaves)
	}
	t.Logf("exhaustively verified %d schedules", leaves)
}

// TestAfekSimBorrowedViewIsFresh: the borrowed view must reflect a
// state within the scan's interval — in particular it can never miss
// an update that completed before the scan began.
func TestAfekSimBorrowedViewIsFresh(t *testing.T) {
	lay := AfekLayout{Base: 0, N: 2}
	mem := pram.NewMem(2, 2)
	lay.Install(mem)
	scanner := NewAfekScanMachine(0, lay)
	updater := NewAfekUpdateMachine(1, lay, []any{"a", "b", "c"})
	sys := pram.NewSystem(mem, []pram.Machine{scanner, updater})
	// First update completes entirely before the scan starts.
	for updater.Completed() == 0 {
		sys.Step(1)
	}
	// Now interleave so the scanner sees two more moves and borrows.
	for !scanner.Done() {
		sys.Step(0)
		sys.Step(0)
		if !updater.Done() {
			for start := updater.Completed(); !updater.Done() && updater.Completed() == start; {
				sys.Step(1)
			}
		}
	}
	view := scanner.Result()
	if view[1] == nil {
		t.Fatalf("scan missed the completed first update: %v", view)
	}
}
