package snapshot_test

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/pram"
	"repro/internal/sched"
	"repro/internal/snapshot"
)

// ExampleSnapshot demonstrates the native semilattice scan: updates
// join in, ReadMax returns the join of everything so far.
func ExampleSnapshot() {
	s := snapshot.New(3, lattice.MaxInt{})
	s.Update(0, int64(3))
	s.Update(1, int64(11))
	s.Update(2, int64(7))
	fmt.Println(s.ReadMax(0))
	// Output: 11
}

// ExampleScanMachine runs the Figure 5 algorithm step by step on the
// simulator and reports its exact operation counts — the Section 6.2
// numbers.
func ExampleScanMachine() {
	const n = 4
	lay := snapshot.Layout{Base: 0, N: n}
	mem := pram.NewMem(lay.Regs(), n)
	lat := lattice.MaxInt{}
	lay.Install(mem, lat)
	machines := make([]pram.Machine, n)
	for p := 0; p < n; p++ {
		m := snapshot.NewScanMachine(p, lay, lat, true)
		m.Enqueue(int64(p * 10))
		machines[p] = m
	}
	sys := pram.NewSystem(mem, machines)
	if err := sys.Run(sched.NewRandom(1), 0); err != nil {
		panic(err)
	}
	c := sys.Mem.Counters()
	fmt.Printf("per-process: %d reads, %d writes (n²−1 = %d, n+1 = %d)\n",
		c.ReadsBy[0], c.WritesBy[0], n*n-1, n+1)
	fmt.Println("result:", machines[0].(*snapshot.ScanMachine).Results()[0])
	// Output:
	// per-process: 15 reads, 5 writes (n²−1 = 15, n+1 = 5)
	// result: 30
}

// ExampleNewArray shows the classic array snapshot built from the
// semilattice scan.
func ExampleNewArray() {
	a := snapshot.NewArray(3)
	a.Update(0, "x")
	a.Update(2, "z")
	fmt.Println(a.Scan(1))
	// Output: [x <nil> z]
}
