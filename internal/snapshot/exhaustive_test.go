package snapshot

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/pram"
)

// Exhaustive model checking of the atomic scan: every interleaving of
// two concurrent Scan operations is enumerated and Lemma 32
// (comparability) plus self-inclusion are asserted at every leaf.

func TestExhaustiveTwoScansComparable(t *testing.T) {
	for _, optimized := range []bool{false, true} {
		lat := lattice.SetUnion{}
		sys, ms := newSimSystem(2, lat, optimized)
		ms[0].Enqueue(lattice.NewSet("a"))
		ms[1].Enqueue(lattice.NewSet("b"))
		leaves, err := pram.Explore(sys, 10_000_000, func(final *pram.System) {
			r0 := final.Machines[0].(*ScanMachine).Results()[0]
			r1 := final.Machines[1].(*ScanMachine).Results()[0]
			if !lattice.Comparable(lat, r0, r1) {
				t.Fatalf("opt=%v: incomparable scan results %v / %v", optimized, r0, r1)
			}
			if !lat.Leq(lattice.NewSet("a"), r0) || !lat.Leq(lattice.NewSet("b"), r1) {
				t.Fatalf("opt=%v: scan missed its own contribution", optimized)
			}
		})
		if err != nil {
			t.Fatalf("%v after %d leaves", err, leaves)
		}
		t.Logf("opt=%v: exhaustively verified %d schedules", optimized, leaves)
	}
}

// TestExhaustiveTwoScansEach: two processes, two scans each, all
// schedules — pairwise comparability across all four results (Lemma
// 32) plus per-process monotonicity (Lemma 28).
func TestExhaustiveTwoScansEach(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive test")
	}
	lat := lattice.SetUnion{}
	sys, ms := newSimSystem(2, lat, true)
	ms[0].Enqueue(lattice.NewSet("a1"))
	ms[0].Enqueue(lattice.NewSet("a2"))
	ms[1].Enqueue(lattice.NewSet("b1"))
	ms[1].Enqueue(lattice.NewSet("b2"))
	leaves, err := pram.Explore(sys, 60_000_000, func(final *pram.System) {
		var rs []any
		for p := 0; p < 2; p++ {
			res := final.Machines[p].(*ScanMachine).Results()
			if !lat.Leq(res[0], res[1]) {
				t.Fatalf("p%d results not monotone: %v then %v", p, res[0], res[1])
			}
			rs = append(rs, res...)
		}
		for i := range rs {
			for j := i + 1; j < len(rs); j++ {
				if !lattice.Comparable(lat, rs[i], rs[j]) {
					t.Fatalf("incomparable results %v / %v", rs[i], rs[j])
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("%v after %d leaves", err, leaves)
	}
	t.Logf("exhaustively verified %d schedules", leaves)
}

// TestExhaustiveScanWithCrash: a scanner racing an updater that may
// crash at any register access — the scanner always completes with a
// comparable-to-everything (here: any) result that includes its own
// contribution.
func TestExhaustiveScanWithCrash(t *testing.T) {
	lat := lattice.MaxInt{}
	sys, ms := newSimSystem(2, lat, true)
	ms[0].Enqueue(int64(5))
	ms[1].Enqueue(int64(9))
	leaves, err := pram.ExploreCrashes(sys, 1, 20_000_000, func(final *pram.System, crashed []int) {
		for p := 0; p < 2; p++ {
			m := final.Machines[p].(*ScanMachine)
			if !m.Done() {
				if len(crashed) == 0 || crashed[0] != p {
					t.Fatalf("process %d blocked without crashing", p)
				}
				continue
			}
			own := int64(5)
			if p == 1 {
				own = 9
			}
			if !lat.Leq(own, m.Results()[0]) {
				t.Fatalf("process %d result %v misses own value", p, m.Results()[0])
			}
		}
	})
	if err != nil {
		t.Fatalf("%v after %d leaves", err, leaves)
	}
	t.Logf("exhaustively verified %d schedule+crash combinations", leaves)
}
