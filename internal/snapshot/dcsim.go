package snapshot

import (
	"fmt"

	"repro/apram/obs"
	"repro/internal/pram"
)

// This file contains simulator machines for the double-collect
// snapshot. Their purpose is Theorem 8's moral in miniature: the
// double-collect Scan is lock-free but not wait-free, and under an
// adversarial schedule that slips one Update between every pair of
// collects, the scanner runs for ever. The simulator makes that
// starvation schedule deterministic and observable, in contrast to the
// wait-free ScanMachine, which finishes in exactly n²+n+3 accesses no
// matter what the scheduler does.

// DCLayout places n double-collect cells in simulated memory.
type DCLayout struct {
	Base int
	N    int
}

// Reg returns the register holding process p's cell.
func (l DCLayout) Reg(p int) int { return l.Base + p }

// Install initializes the cells and assigns owners.
func (l DCLayout) Install(m pram.Memory) {
	for p := 0; p < l.N; p++ {
		m.Init(l.Reg(p), dcSimCell{})
		m.SetOwner(l.Reg(p), p)
	}
}

// dcSimCell is the simulated register contents: sequence number plus
// payload.
type dcSimCell struct {
	Seq uint64
	Val any
}

// DCUpdateMachine performs a script of double-collect updates, one
// write per update.
type DCUpdateMachine struct {
	proc  int
	lay   DCLayout
	queue []any
	seq   uint64
}

// NewDCUpdateMachine returns an updater for process proc that writes
// each value in script, one write per Step.
func NewDCUpdateMachine(proc int, lay DCLayout, script []any) *DCUpdateMachine {
	return &DCUpdateMachine{proc: proc, lay: lay, queue: append([]any(nil), script...)}
}

// Done reports whether the script is exhausted.
func (mc *DCUpdateMachine) Done() bool { return len(mc.queue) == 0 }

// Completed returns the number of updates written (pram.Progress).
func (mc *DCUpdateMachine) Completed() int { return int(mc.seq) }

// Clone returns an independent copy.
func (mc *DCUpdateMachine) Clone() pram.Machine {
	cp := *mc
	cp.queue = append([]any(nil), mc.queue...)
	return &cp
}

// Step writes the next scripted value with a fresh sequence number.
func (mc *DCUpdateMachine) Step(m pram.Memory) {
	if mc.Done() {
		panic("snapshot: Step after Done")
	}
	mc.seq++
	m.Write(mc.proc, mc.lay.Reg(mc.proc), dcSimCell{Seq: mc.seq, Val: mc.queue[0]})
	mc.queue = mc.queue[1:]
}

// DCScanMachine performs a single double-collect Scan: it repeatedly
// collects all n cells and finishes only when two consecutive collects
// carry identical sequence numbers.
type DCScanMachine struct {
	proc int
	lay  DCLayout

	prev    []dcSimCell // previous collect, nil before the first
	cur     []dcSimCell
	i       int // next cell to read in the current collect
	retries int
	done    bool
	result  []any

	// probe, when set, receives an obs.EvRetry per dirty collect pair —
	// the lock-free starvation the flight recorder exists to show.
	probe obs.Probe
}

// NewDCScanMachine returns a scanner for process proc.
func NewDCScanMachine(proc int, lay DCLayout) *DCScanMachine {
	return &DCScanMachine{proc: proc, lay: lay, cur: make([]dcSimCell, lay.N)}
}

// Done reports whether the scan completed (two identical collects).
func (mc *DCScanMachine) Done() bool { return mc.done }

// Completed returns 1 once the scan finished (pram.Progress).
func (mc *DCScanMachine) Completed() int {
	if mc.done {
		return 1
	}
	return 0
}

// Retries returns the number of failed collect pairs so far.
func (mc *DCScanMachine) Retries() int { return mc.retries }

// Instrument attaches a probe for retry events. Clones share it.
func (mc *DCScanMachine) Instrument(p obs.Probe) { mc.probe = p }

// Result returns the scanned view. It panics before Done.
func (mc *DCScanMachine) Result() []any {
	if !mc.done {
		panic("snapshot: Result before Done")
	}
	return mc.result
}

// Clone returns an independent copy.
func (mc *DCScanMachine) Clone() pram.Machine {
	cp := *mc
	cp.prev = append([]dcSimCell(nil), mc.prev...)
	cp.cur = append([]dcSimCell(nil), mc.cur...)
	cp.result = append([]any(nil), mc.result...)
	return &cp
}

// Step reads the next cell of the current collect; at the end of a
// collect it either finishes (clean pair) or starts another collect.
func (mc *DCScanMachine) Step(m pram.Memory) {
	if mc.done {
		panic("snapshot: Step after Done")
	}
	mc.cur[mc.i] = m.Read(mc.proc, mc.lay.Reg(mc.i)).(dcSimCell)
	mc.i++
	if mc.i < mc.lay.N {
		return
	}
	// Collect complete.
	if mc.prev != nil {
		clean := true
		for q := range mc.cur {
			if mc.cur[q].Seq != mc.prev[q].Seq {
				clean = false
				break
			}
		}
		if clean {
			mc.result = make([]any, mc.lay.N)
			for q, c := range mc.cur {
				if c.Seq != 0 {
					mc.result[q] = c.Val
				}
			}
			mc.done = true
			return
		}
		mc.retries++
		if mc.probe != nil {
			mc.probe.Event(mc.proc, obs.EvRetry)
		}
	}
	mc.prev = append(mc.prev[:0], mc.cur...)
	mc.i = 0
}

// String aids debugging.
func (mc *DCScanMachine) String() string {
	return fmt.Sprintf("DCScan{proc %d, retries %d, done %v}", mc.proc, mc.retries, mc.done)
}
